#include "sim/simuser.h"

#include <algorithm>
#include <cmath>

#include "core/rewrite.h"
#include "exec/executor.h"

namespace qp::sim {

using core::ImplicitPreference;
using core::PreferenceKind;
using core::QueryRewriter;
using core::RankingFunction;
using core::SelectedPreference;
using sql::SelectQuery;
using storage::Value;

Result<SimulatedUser> SimulatedUser::Make(const storage::Database* db,
                                          const core::UserProfile* profile,
                                          const SelectQuery& base,
                                          const Config& config) {
  SimulatedUser user(config);
  user.latent_ranking_ =
      RankingFunction(config.latent_style, config.latent_style,
                      config.latent_mixed);

  // Everything in the profile related to this query, expanded to implicit
  // preferences, becomes part of the latent taste model.
  QP_ASSIGN_OR_RETURN(core::PersonalizationGraph graph,
                      core::PersonalizationGraph::Build(db, profile));
  core::PreferenceSelector selector(&graph);
  const core::QueryContext ctx = core::QueryContext::FromQuery(base);
  QP_ASSIGN_OR_RETURN(std::vector<SelectedPreference> related,
                      selector.SelectFakeCrit(ctx, {}));

  // The base query's first FROM table provides the tuple id.
  if (base.from.empty() || base.from[0].derived != nullptr) {
    return Status::InvalidArgument("simulated user needs a base-table query");
  }
  QP_ASSIGN_OR_RETURN(const storage::Table* anchor_table,
                      db->GetTable(base.from[0].table));
  const auto& pk = anchor_table->schema().primary_key();
  if (pk.size() != 1) {
    return Status::InvalidArgument("anchor table needs a single-column pk");
  }
  SelectQuery base2 = base;
  base2.order_by.clear();
  base2.limit.reset();
  base2.select.push_back(
      {sql::Expr::Column(QueryRewriter::BaseAlias(base, base.from[0].table),
                         pk[0]),
       "_tid"});

  QueryRewriter rewriter(db);
  exec::Executor executor(db);
  const size_t tid_col = base2.select.size() - 1;

  const auto add_latent = [&](const ImplicitPreference& pref,
                              double jitter) -> Status {
    QP_ASSIGN_OR_RETURN(core::RewrittenPreference parts,
                        rewriter.Rewrite(base2, pref));
    LatentPreference latent;
    SelectQuery query;
    if (parts.kind == PreferenceKind::kAbsenceOneN) {
      QP_ASSIGN_OR_RETURN(query, rewriter.BuildViolationQuery(base2, pref));
      latent.map_means_satisfied = false;
      latent.out_degree = jitter * parts.satisfaction_degree;
    } else {
      QP_ASSIGN_OR_RETURN(query, rewriter.BuildSatisfactionQuery(base2, pref));
      latent.map_means_satisfied = true;
      latent.out_degree = jitter * parts.failure_degree;
    }
    QP_ASSIGN_OR_RETURN(exec::RowSet rows,
                        executor.Execute(*sql::Query::Single(query)));
    for (const auto& row : rows.rows()) {
      const Value& tid = row[tid_col];
      if (tid.is_null()) continue;
      const double degree =
          jitter * (row.back().is_numeric() ? row.back().ToNumeric() : 0.0);
      auto [it, inserted] = latent.in_map.emplace(tid, degree);
      if (!inserted) {
        // Keep the strongest signal across join fan-out.
        it->second = latent.map_means_satisfied
                         ? std::max(it->second, degree)
                         : std::min(it->second, degree);
      }
    }
    user.latent_.push_back(std::move(latent));
    return Status::OK();
  };

  for (const auto& selected : related) {
    // Latent degrees drift multiplicatively from the stated profile. The
    // upside is capped: mis-stated preferences mostly mean the user cares
    // less than the profile claims, so noisier (novice) profiles lose more
    // relevance than they gain.
    const double jitter = std::clamp(
        1.0 + user.rng_.Gaussian(0.0, config.degree_noise), 0.35, 1.1);
    QP_RETURN_IF_ERROR(add_latent(selected.pref, jitter));
  }

  // Hidden latent preferences: tastes the user never put in the profile.
  // Sampled as thresholds over the anchor relation's numeric attributes
  // with values drawn from the data.
  const auto& anchor_schema = anchor_table->schema();
  std::vector<size_t> numeric_cols;
  for (size_t c = 0; c < anchor_schema.num_columns(); ++c) {
    const bool is_pk = !pk.empty() && anchor_schema.column(c).name == pk[0];
    const auto type = anchor_schema.column(c).type;
    if (!is_pk && (type == storage::DataType::kInt ||
                   type == storage::DataType::kDouble)) {
      numeric_cols.push_back(c);
    }
  }
  for (size_t h = 0;
       h < config.num_hidden_preferences && !numeric_cols.empty() &&
       anchor_table->num_rows() > 0;
       ++h) {
    const size_t col = numeric_cols[user.rng_.Index(numeric_cols.size())];
    const storage::Row& sample =
        anchor_table->row(user.rng_.Index(anchor_table->num_rows()));
    if (sample[col].is_null()) continue;
    core::SelectionPreference hidden;
    hidden.condition = {
        storage::AttributeRef(anchor_schema.name(),
                              anchor_schema.column(col).name),
        user.rng_.Bernoulli(0.5) ? sql::BinaryOp::kGe : sql::BinaryOp::kLe,
        sample[col]};
    const double degree = user.rng_.UniformDouble(0.4, 0.9);
    auto doi = core::DoiPair::Exact(
        user.rng_.Bernoulli(0.3) ? -degree : degree, 0.0);
    if (!doi.ok()) continue;
    hidden.doi = std::move(doi).value();
    QP_RETURN_IF_ERROR(
        add_latent(ImplicitPreference::Selection(std::move(hidden)), 1.0));
  }

  // Precompute the user's relevant tuples over the base query.
  QP_ASSIGN_OR_RETURN(exec::RowSet all,
                      executor.Execute(*sql::Query::Single(base2)));
  for (const auto& row : all.rows()) {
    const Value& tid = row[tid_col];
    if (tid.is_null()) continue;
    if (user.LatentInterest(tid) >= config.relevance_threshold) {
      user.relevant_.push_back(tid);
    }
  }
  return user;
}

double SimulatedUser::LatentInterest(const Value& tid) const {
  std::vector<double> pos, neg;
  for (const auto& latent : latent_) {
    auto it = latent.in_map.find(tid);
    double degree;
    if (it != latent.in_map.end()) {
      degree = it->second;
    } else {
      degree = latent.out_degree;
    }
    const bool satisfied = it != latent.in_map.end()
                               ? latent.map_means_satisfied
                               : !latent.map_means_satisfied;
    if (satisfied && degree >= 0.0) {
      pos.push_back(std::min(degree, 1.0));
    } else {
      neg.push_back(std::clamp(degree, -1.0, 0.0));
    }
  }
  return std::clamp(latent_ranking_.Rank(pos, neg), -1.0, 1.0);
}

double SimulatedUser::ReportTupleInterest(const Value& tid) {
  const double noisy = 10.0 * LatentInterest(tid) +
                       rng_.Gaussian(0.0, 10.0 * config_.report_noise);
  return std::clamp(noisy, -10.0, 10.0);
}

SimulatedUser::AnswerEvaluation SimulatedUser::EvaluateAnswer(
    const std::vector<Value>& ranked) {
  AnswerEvaluation eval;
  const size_t window = std::min(config_.attention_window, ranked.size());
  if (window == 0) {
    eval.answer_score = 0.0;
    eval.difficulty = 5.0;
    eval.coverage = 0.0;
    return eval;
  }

  double sum = 0.0, best = -1.0;
  size_t first_relevant = window;  // sentinel: none found
  std::unordered_map<Value, bool, storage::ValueHash> relevant_set;
  relevant_set.reserve(relevant_.size());
  for (const auto& tid : relevant_) relevant_set.emplace(tid, true);
  size_t found_relevant = 0;
  for (size_t i = 0; i < window; ++i) {
    const double interest = LatentInterest(ranked[i]);
    sum += interest;
    best = std::max(best, interest);
    if (relevant_set.count(ranked[i]) > 0) {
      ++found_relevant;
      if (first_relevant == window) first_relevant = i;
    }
  }
  const double mean = sum / window;

  // Difficulty: how far down the list the first interesting tuple sits;
  // 5.0 when nothing interesting shows up in the window.
  eval.difficulty = first_relevant == window
                        ? 5.0
                        : std::min(5.0, static_cast<double>(first_relevant) /
                                            10.0 * 5.0);

  // Coverage: relevant tuples surfaced within the window, over the most the
  // window could have shown.
  const size_t max_visible =
      std::max<size_t>(1, std::min(relevant_.size(),
                                   config_.attention_window));
  eval.coverage = relevant_.empty()
                      ? 1.0
                      : static_cast<double>(found_relevant) / max_visible;

  // Answer score: mostly the mean examined interest, partly the best find.
  const double raw = 0.6 * mean + 0.4 * std::max(best, 0.0);
  eval.answer_score =
      std::clamp(10.0 * raw + rng_.Gaussian(0.0, 10.0 * config_.report_noise),
                 -10.0, 10.0);
  return eval;
}

}  // namespace qp::sim
