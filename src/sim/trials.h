// The user-study protocols of Section 6.2/6.3, run with simulated subjects.
//
// Trial 1 (Figures 9-11): every subject issues five queries, each executed
// once unchanged and once personalized (K = all related preferences, L = 2),
// and scores every answer in [-10, 10].
//
// Trial 2 (Figures 12-14): every subject pursues one concrete need; half of
// the subjects get personalized answers. Each reports degree of difficulty,
// coverage and an overall score.
//
// Figures 15-17: a subject whose latent combination philosophy is
// inflationary / dominant / reserved scores the tuples of one personalized
// query; the reported interest is compared against all three candidate
// ranking functions evaluated on each tuple's satisfied degrees.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "core/personalizer.h"
#include "datagen/profilegen.h"
#include "sim/simuser.h"

namespace qp::sim {

/// \brief Study-wide knobs.
struct StudyConfig {
  uint64_t seed = 2005;
  size_t num_experts = 8;
  size_t num_novices = 6;
  /// Latent-degree drift: experts know their taste well, novices less so.
  double expert_noise = 0.08;
  double novice_noise = 0.35;
  /// L preferences must hold in personalized answers (paper: L = 2).
  size_t l = 2;
  /// Database scale the study runs against.
  datagen::MovieGenConfig db_config;
};

/// The five study queries (the paper used 3 shared + 2 user-chosen; all five
/// are fixed here). Each projects the anchor primary key as its first
/// column so answers can be matched against the latent model.
const std::vector<std::string>& StudyQueries();

/// Per-query average answer scores per group (Figures 9-11).
struct Trial1Result {
  std::vector<double> expert_unchanged, expert_personalized;
  std::vector<double> novice_unchanged, novice_personalized;

  double ExpertAvg(bool personalized) const;
  double NoviceAvg(bool personalized) const;
};

Result<Trial1Result> RunTrial1(const storage::Database* db,
                               const StudyConfig& config);

/// Group averages for the free-need trial (Figures 12-14).
struct Trial2Result {
  double difficulty_nonpers = 0.0, difficulty_pers = 0.0;
  double coverage_nonpers = 0.0, coverage_pers = 0.0;
  double score_nonpers = 0.0, score_pers = 0.0;
};

Result<Trial2Result> RunTrial2(const storage::Database* db,
                               const StudyConfig& config);

/// One tuple's interest under the user and the three candidate functions.
struct RankingComparisonPoint {
  double user = 0.0;
  double dominant = 0.0;
  double inflationary = 0.0;
  double reserved = 0.0;
};

/// Runs one personalized query and scores its tuples with a user whose
/// latent philosophy is `latent_style` (Figures 15-17).
Result<std::vector<RankingComparisonPoint>> CompareRankingFunctions(
    const storage::Database* db, const core::UserProfile* profile,
    const std::string& query_sql, core::CombinationStyle latent_style,
    uint64_t seed, size_t max_tuples = 22);

}  // namespace qp::sim
