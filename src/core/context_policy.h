// Context-driven personalization parameters (Sections 1 and 7): "Parameters
// K and L can be specified directly by the user or derived based on various
// criteria on the query context, such as user location, time, device" — and
// the conclusions list combining preferences with query context as ongoing
// work.
//
// KLPolicy encodes the natural derivation: constrained devices and
// on-the-go use want smaller, more focused answers (smaller K, larger L,
// progressive delivery); a desktop session with time to browse gets the
// widest net.

#pragma once

#include "core/personalizer.h"

namespace qp::core {

/// \brief The query-context signals the paper mentions.
struct QueryEnvironment {
  enum class Device {
    kDesktop,
    kMobile,
    kVoice,
  };
  Device device = Device::kDesktop;
  /// Location signal: away from the desk (commuting, in town).
  bool on_the_go = false;
  /// Soft time budget for the answer in seconds (0 = unconstrained).
  double time_budget_seconds = 0.0;
};

/// \brief Derives K, L, the answer algorithm and result caps from context.
class KLPolicy {
 public:
  /// `related_estimate` is an upper bound on the preferences that relate to
  /// the query (e.g. the profile size); K never exceeds it.
  static PersonalizeOptions Derive(const QueryEnvironment& environment,
                                   size_t related_estimate);
};

}  // namespace qp::core
