#include "core/schema_map.h"

#include <sstream>

#include "common/string_util.h"

namespace qp::core {

using storage::AttributeRef;

Status SchemaMapping::MapRelation(const std::string& logical,
                                  const std::string& physical) {
  if (logical.empty() || physical.empty()) {
    return Status::InvalidArgument("relation names must be non-empty");
  }
  if (logical.find('.') != std::string::npos ||
      physical.find('.') != std::string::npos) {
    return Status::InvalidArgument(
        "relation mapping must not contain '.': use MapAttribute");
  }
  relations_[ToLower(logical)] = ToLower(physical);
  return Status::OK();
}

Status SchemaMapping::MapAttribute(const std::string& logical,
                                   const std::string& physical) {
  QP_ASSIGN_OR_RETURN(AttributeRef from, AttributeRef::Parse(logical));
  QP_ASSIGN_OR_RETURN(AttributeRef to, AttributeRef::Parse(physical));
  attributes_[from.ToString()] = to;
  return Status::OK();
}

AttributeRef SchemaMapping::Resolve(const AttributeRef& logical) const {
  auto attr_it = attributes_.find(logical.ToString());
  if (attr_it != attributes_.end()) return attr_it->second;
  auto rel_it = relations_.find(logical.table);
  if (rel_it != relations_.end()) {
    return AttributeRef(rel_it->second, logical.column);
  }
  return logical;
}

Result<UserProfile> SchemaMapping::Apply(
    const UserProfile& logical_profile) const {
  UserProfile out;
  if (logical_profile.preferred_ranking().has_value()) {
    out.set_preferred_ranking(*logical_profile.preferred_ranking());
  }
  for (const auto& p : logical_profile.selections()) {
    SelectionPreference mapped = p;
    mapped.condition.attr = Resolve(p.condition.attr);
    QP_RETURN_IF_ERROR(out.AddSelection(std::move(mapped)));
  }
  for (const auto& p : logical_profile.joins()) {
    JoinPreference mapped = p;
    mapped.from = Resolve(p.from);
    mapped.to = Resolve(p.to);
    QP_RETURN_IF_ERROR(out.AddJoin(std::move(mapped)));
  }
  return out;
}

Result<SchemaMapping> SchemaMapping::Parse(const std::string& text) {
  SchemaMapping mapping;
  std::istringstream in(text);
  std::string raw;
  size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const size_t arrow = line.find("->");
    if (arrow == std::string_view::npos) {
      return Status::ParseError("mapping line " + std::to_string(line_no) +
                                ": expected 'logical -> physical'");
    }
    const std::string logical(Trim(line.substr(0, arrow)));
    const std::string physical(Trim(line.substr(arrow + 2)));
    const bool is_attribute = logical.find('.') != std::string::npos;
    Status status = is_attribute ? mapping.MapAttribute(logical, physical)
                                 : mapping.MapRelation(logical, physical);
    if (!status.ok()) {
      return Status::ParseError("mapping line " + std::to_string(line_no) +
                                ": " + status.message());
    }
  }
  return mapping;
}

std::string SchemaMapping::Serialize() const {
  std::string out;
  for (const auto& [logical, physical] : relations_) {
    out += logical + " -> " + physical + "\n";
  }
  for (const auto& [logical, physical] : attributes_) {
    out += logical + " -> " + physical.ToString() + "\n";
  }
  return out;
}

}  // namespace qp::core
