// SPA — Simply Personalized Answers (Section 5).
//
// The top-K preferences become one sub-query each (Example 6); the
// personalized query is their UNION ALL, grouped by the original projection,
// keeping groups with at least L rows (HAVING count(*) >= L) and ranked by a
// user-defined aggregate r(degree). The whole thing executes as a single
// query in the underlying engine, which is exactly why SPA cannot emit
// progressively and pays full price for 1-n absence subqueries.

#pragma once

#include "common/status.h"
#include "core/answer.h"
#include "core/ranking.h"
#include "core/rewrite.h"
#include "exec/executor.h"

namespace qp::core {

/// \brief Generates personalized answers by query integration.
class SpaGenerator {
 public:
  /// `exec_options` configures the executor that runs the integrated query
  /// (SPA's whole cost is that one query, so morsel parallelism applies to
  /// its scans, joins and aggregation directly).
  SpaGenerator(const storage::Database* db, RankingFunction ranking,
               exec::ExecOptions exec_options = {})
      : db_(db),
        rewriter_(db),
        ranking_(ranking),
        exec_options_(exec_options) {}

  /// Builds the full personalized query (UNION ALL + outer group/having/
  /// order) without executing it — exposed for inspection and tests.
  Result<sql::QueryPtr> BuildPersonalizedQuery(
      const sql::SelectQuery& base,
      const std::vector<SelectedPreference>& preferences, size_t L) const;

  /// Executes the personalized query and packages the ranked result.
  /// `preferences` must be selection preferences (joins are traversal-only).
  Result<PersonalizedAnswer> Generate(
      const sql::SelectQuery& base,
      const std::vector<SelectedPreference>& preferences, size_t L) const;

 private:
  const storage::Database* db_;
  QueryRewriter rewriter_;
  RankingFunction ranking_;
  exec::ExecOptions exec_options_;
};

}  // namespace qp::core
