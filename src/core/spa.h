// SPA — Simply Personalized Answers (Section 5).
//
// The top-K preferences become one sub-query each (Example 6); the
// personalized query is their UNION ALL, grouped by the original projection,
// keeping groups with at least L rows (HAVING count(*) >= L) and ranked by a
// user-defined aggregate r(degree). The whole thing executes as a single
// query in the underlying engine, which is exactly why SPA cannot emit
// progressively and pays full price for 1-n absence subqueries.
//
// Planning (building the personalized query) and execution are split so a
// serving layer can cache the plan per (query, preferences, L) and re-run
// it: the plan depends only on those inputs, never on the ranking function
// or threading options, which bind at execution time.

#pragma once

#include "common/status.h"
#include "core/answer.h"
#include "core/ranking.h"
#include "core/rewrite.h"
#include "exec/executor.h"

namespace qp::core {

/// \brief Generates personalized answers by query integration.
class SpaGenerator {
 public:
  /// \brief A reusable integration plan: the personalized query plus the
  /// preferences it integrates. Immutable once built; safe to execute
  /// concurrently from several threads / generator instances.
  struct Plan {
    sql::QueryPtr query;
    std::vector<SelectedPreference> preferences;
  };

  /// `exec_options` configures the executor that runs the personalized query
  /// (SPA's whole cost is that one query, so morsel parallelism applies to
  /// its scans, joins and aggregation directly). Callers normally leave it
  /// defaulted and plumb PersonalizeOptions::exec through Personalizer.
  SpaGenerator(const storage::Database* db, RankingFunction ranking,
               exec::ExecOptions exec_options = {})
      : db_(db),
        rewriter_(db),
        ranking_(ranking),
        exec_options_(exec_options) {}

  /// Builds the full personalized query (UNION ALL + outer group/having/
  /// order) without executing it — exposed for inspection and tests.
  Result<sql::QueryPtr> BuildPersonalizedQuery(
      const sql::SelectQuery& base,
      const std::vector<SelectedPreference>& preferences, size_t L) const;

  /// Builds the reusable plan for `base` under `preferences` and `L`.
  /// `preferences` must be selection preferences (joins are traversal-only).
  Result<Plan> BuildPlan(const sql::SelectQuery& base,
                         const std::vector<SelectedPreference>& preferences,
                         size_t L) const;

  /// Executes a previously built plan and packages the ranked result. When
  /// `trace` is non-null, the integrated query's physical plan is recorded
  /// under it — one "union branch N:" span per preference sub-query, each
  /// with its row count — identically at every thread count.
  Result<PersonalizedAnswer> GenerateWithPlan(
      const Plan& plan, obs::TraceSpan* trace = nullptr) const;

  /// BuildPlan + GenerateWithPlan in one shot (the cold path).
  Result<PersonalizedAnswer> Generate(
      const sql::SelectQuery& base,
      const std::vector<SelectedPreference>& preferences, size_t L) const;

 private:
  const storage::Database* db_;
  QueryRewriter rewriter_;
  RankingFunction ranking_;
  exec::ExecOptions exec_options_;
};

}  // namespace qp::core
