#include "core/ppa.h"

#include "core/path_probe.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <map>
#include <memory>
#include <unordered_set>

#include "common/thread_pool.h"

namespace qp::core {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprPtr;
using sql::SelectQuery;
using storage::Value;

/// One planned query (S_i or A_i).
struct PpaPrefPlan {
  size_t pref_index = 0;  ///< into the selected-preferences vector
  PreferenceKind kind = PreferenceKind::kPresence;
  bool satisfied_when_true = true;
  double satisfaction_degree = 0.0;
  double failure_degree = 0.0;
  SelectQuery query;  ///< full query: base.select + _tid + degree
  /// Prepared parameterized point query Q_i(t): an index into the shared
  /// walk table plus the compiled condition. -1 when the preference does
  /// not anchor at the base query's target relation (the probe then falls
  /// back to executing `query AND pk = t`).
  int walk_id = -1;
  PathCondition condition;
  double est_selectivity = 1.0;
};

/// The immutable plan behind PpaGenerator::Plan: everything Generate used to
/// derive up front — the id-extended base query, the S/A query sets already
/// in selectivity order, and the prepared walks the point probes share.
/// Walks hold pointers into table hash indexes and the ordering bakes in
/// histogram estimates, so a cached rep must be dropped when the stats epoch
/// moves.
struct PpaPlanRep {
  SelectQuery base2;            ///< base query extended with the _tid column
  ExprPtr tid_col;              ///< anchor-table primary-key column
  size_t n_base_cols = 0;       ///< projection width without _tid/degree
  std::vector<std::string> column_names;  ///< base projection output names
  std::vector<SelectedPreference> preferences;
  std::vector<PathWalk> walks;
  std::vector<PpaPrefPlan> s_plans;  ///< presence + 1-1 absence, asc. sel.
  std::vector<PpaPrefPlan> a_plans;  ///< 1-n absence, ascending selectivity
};

namespace {

/// Result of one parameterized probe: did tuple t satisfy the preference,
/// and with which per-tuple degree.
struct ProbeOutcome {
  bool satisfied = false;
  double degree = 0.0;
};

/// Working record for one tuple id.
struct TupleRecord {
  storage::Row values;  ///< base projection (without _tid / degree)
  std::vector<PreferenceOutcome> satisfied;
  std::vector<PreferenceOutcome> failed;
  double doi = 0.0;
};

/// Per-task probe scratch: the walk frontiers for one tuple, shared across
/// the preferences probing the same path. Each concurrent probe task owns
/// its own context, so frontier reuse needs no synchronization.
struct ProbeContext {
  std::vector<std::vector<const storage::Row*>> frontiers;
  std::vector<char> valid;

  explicit ProbeContext(size_t walk_count)
      : frontiers(walk_count), valid(walk_count, 0) {}

  /// Invalidates cached frontiers when the context moves to a new tuple.
  void Reset() { std::fill(valid.begin(), valid.end(), 0); }
};

/// Runs `fn(j, ctx)` for j in [0, n): serially with one reused context when
/// no pool is given (or the batch is trivial), otherwise as independent pool
/// tasks with a context each. Reports the lowest-index failure — exactly the
/// error a serial loop would have hit first.
Status RunProbeTasks(common::ThreadPool* pool, size_t walk_count, size_t n,
                     const std::function<Status(size_t, ProbeContext&)>& fn) {
  if (pool == nullptr || n <= 1) {
    ProbeContext ctx(walk_count);
    for (size_t j = 0; j < n; ++j) {
      QP_RETURN_IF_ERROR(fn(j, ctx));
    }
    return Status::OK();
  }
  std::vector<Status> statuses(n);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (size_t j = 0; j < n; ++j) {
    tasks.emplace_back([&, j]() {
      ProbeContext ctx(walk_count);
      statuses[j] = fn(j, ctx);
    });
  }
  pool->RunAll(std::move(tasks));
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

/// Upper bound on the positive combination any subset of `degrees` can
/// achieve: the inflationary function is monotone in set extension, but
/// dominant/reserved are bounded by the max element.
double PositiveUpperBound(const RankingFunction& ranking,
                          const std::vector<double>& degrees) {
  if (degrees.empty()) return 0.0;
  if (ranking.positive_style() == CombinationStyle::kInflationary) {
    return CombinePositive(CombinationStyle::kInflationary, degrees);
  }
  return *std::max_element(degrees.begin(), degrees.end());
}

}  // namespace

Result<PpaGenerator::Plan> PpaGenerator::BuildPlan(
    const SelectQuery& base,
    const std::vector<SelectedPreference>& preferences) const {
  if (preferences.empty()) {
    return Status::InvalidQuery("no preferences to integrate");
  }
  if (base.from.empty() || base.from[0].derived != nullptr) {
    return Status::InvalidQuery(
        "PPA needs a base table as the query's first FROM entry");
  }
  for (const auto& item : base.select) {
    const std::string name = item.OutputName();
    if (name == "degree" || name == "_tid") {
      return Status::InvalidQuery("base query projects reserved column '" +
                                  name + "'");
    }
  }
  const std::string anchor = base.from[0].table;
  const std::string anchor_alias = QueryRewriter::BaseAlias(base, anchor);
  QP_ASSIGN_OR_RETURN(const storage::Table* anchor_table,
                      db_->GetTable(anchor));
  const auto& pk = anchor_table->schema().primary_key();
  if (pk.size() != 1) {
    return Status::Unsupported("PPA needs a single-column primary key on '" +
                               anchor + "'");
  }

  auto rep = std::make_shared<PpaPlanRep>();
  rep->tid_col = Expr::Column(anchor_alias, pk[0]);

  // Base query extended with the tuple id.
  rep->base2 = base;
  rep->base2.order_by.clear();
  rep->base2.limit.reset();
  rep->base2.select.push_back({rep->tid_col, "_tid"});
  rep->n_base_cols = base.select.size();
  for (const auto& item : base.select) {
    rep->column_names.push_back(item.OutputName());
  }
  rep->preferences = preferences;

  // ---- Plan S (presence + 1-1 absence) and A (1-n absence) queries. ----
  // Preferences sharing a join path share one prepared walk, the way the
  // branches of the paper's union query Q_i(t) share their scans.
  std::map<std::string, size_t> walk_ids;
  for (size_t i = 0; i < preferences.size(); ++i) {
    const ImplicitPreference& pref = preferences[i].pref;
    if (!pref.has_selection()) {
      return Status::Unsupported("PPA integrates selection preferences only");
    }
    QP_ASSIGN_OR_RETURN(RewrittenPreference parts,
                        rewriter_.Rewrite(rep->base2, pref));
    PpaPrefPlan plan;
    plan.pref_index = i;
    plan.kind = parts.kind;
    plan.satisfied_when_true = parts.satisfied_when_true;
    plan.satisfaction_degree = parts.satisfaction_degree;
    plan.failure_degree = parts.failure_degree;
    if (pref.AnchorRelation() == anchor) {
      auto walk = PathWalk::Prepare(db_, pref);
      auto condition = PathCondition::Prepare(db_, pref);
      if (walk.ok() && condition.ok()) {
        auto [it, inserted] =
            walk_ids.try_emplace(walk->signature(), rep->walks.size());
        if (inserted) rep->walks.push_back(std::move(walk).value());
        plan.walk_id = static_cast<int>(it->second);
        plan.condition = std::move(condition).value();
      }
    }

    // Estimated selectivity of the underlying atomic condition.
    const SelectionPreference& sel = pref.selection();
    double cond_sel = 1.0 / 3.0;
    if (stats_ != nullptr) {
      const DoiFunction& dt = sel.doi.d_true();
      const DoiFunction& df = sel.doi.d_false();
      const DoiFunction* elastic =
          dt.is_elastic() ? &dt : (df.is_elastic() ? &df : nullptr);
      if (elastic != nullptr) {
        cond_sel = stats_->EstimateRangeSelectivity(
            sel.condition.attr, elastic->support_lo(), elastic->support_hi());
      } else {
        stats::CompareOp op = stats::CompareOp::kEq;
        switch (sel.condition.op) {
          case BinaryOp::kEq: op = stats::CompareOp::kEq; break;
          case BinaryOp::kNe: op = stats::CompareOp::kNe; break;
          case BinaryOp::kLt: op = stats::CompareOp::kLt; break;
          case BinaryOp::kLe: op = stats::CompareOp::kLe; break;
          case BinaryOp::kGt: op = stats::CompareOp::kGt; break;
          case BinaryOp::kGe: op = stats::CompareOp::kGe; break;
        }
        cond_sel = stats_->EstimateSelectivity(sel.condition.attr, op,
                                               sel.condition.value);
      }
    }

    if (parts.kind == PreferenceKind::kAbsenceOneN) {
      QP_ASSIGN_OR_RETURN(plan.query,
                          rewriter_.BuildViolationQuery(rep->base2, pref));
      plan.est_selectivity = cond_sel;
      rep->a_plans.push_back(std::move(plan));
    } else {
      QP_ASSIGN_OR_RETURN(plan.query,
                          rewriter_.BuildSatisfactionQuery(rep->base2, pref));
      plan.est_selectivity = parts.kind == PreferenceKind::kAbsenceOneOne
                                 ? 1.0 - cond_sel
                                 : cond_sel;
      rep->s_plans.push_back(std::move(plan));
    }
  }
  std::stable_sort(rep->s_plans.begin(), rep->s_plans.end(),
                   [](const PpaPrefPlan& a, const PpaPrefPlan& b) {
                     return a.est_selectivity < b.est_selectivity;
                   });
  std::stable_sort(rep->a_plans.begin(), rep->a_plans.end(),
                   [](const PpaPrefPlan& a, const PpaPrefPlan& b) {
                     return a.est_selectivity < b.est_selectivity;
                   });

  Plan plan;
  plan.rep_ = std::move(rep);
  return plan;
}

Result<PersonalizedAnswer> PpaGenerator::Generate(
    const SelectQuery& base, const std::vector<SelectedPreference>& preferences,
    const Options& options) const {
  QP_ASSIGN_OR_RETURN(Plan plan, BuildPlan(base, preferences));
  return GenerateWithPlan(plan, options);
}

Result<PersonalizedAnswer> PpaGenerator::GenerateWithPlan(
    const Plan& plan, const Options& options) const {
  if (!plan.valid()) {
    return Status::InvalidArgument("PPA plan is empty (default-constructed)");
  }
  const PpaPlanRep& rep = *plan.rep_;
  const auto start = std::chrono::steady_clock::now();

  exec::ExecOptions exec_options = options.EffectiveExec();
  if (exec_options.cancel == nullptr) exec_options.cancel = options.cancel;
  exec::Executor executor(db_, nullptr, exec_options);
  // Point probes fan out over the same pool the executor uses: the shared
  // one when injected, else a pool owned by this call.
  common::ThreadPool* probe_pool = nullptr;
  std::unique_ptr<common::ThreadPool> owned_pool;
  if (exec_options.parallelism() > 1) {
    if (exec_options.pool != nullptr) {
      probe_pool = exec_options.pool;
    } else {
      owned_pool =
          std::make_unique<common::ThreadPool>(exec_options.num_threads - 1);
      probe_pool = owned_pool.get();
    }
  }

  PersonalizedAnswer answer;
  answer.preferences = rep.preferences;
  for (const auto& name : rep.column_names) {
    answer.columns.push_back({"", name});
  }

  // Deadline / cancellation checkpoints. `rounds_run` counts completed
  // rounds (each S query, each A query, the complement scan); before each
  // round the token may cut generation, and a cancellation status surfacing
  // *inside* a round (the executor's morsel-boundary checks) cuts at the
  // same boundary — the interrupted round's results are discarded, so the
  // answer is exactly the prefix emitted after `rounds_run` complete
  // rounds. Everything about the prefix is deterministic for a given cut
  // round; only WHICH round a wall-clock deadline lands on is timing.
  size_t rounds_run = 0;
  bool cut = false;
  const auto cut_before_round = [&]() {
    return options.cancel != nullptr && options.cancel->CutAtRound(rounds_run);
  };
  const auto interrupted = [&](const Status& s) {
    return IsCancellation(s.code());
  };

  // Result bookkeeping.
  std::unordered_set<Value, storage::ValueHash> seen;
  std::unordered_set<Value, storage::ValueHash> nids;
  std::map<double, std::vector<TupleRecord>, std::greater<double>> pending;
  size_t pending_count = 0;
  bool first_emitted = false;
  const auto top_n_reached = [&]() {
    return options.top_n > 0 && answer.tuples.size() >= options.top_n;
  };
  const auto emit_ready = [&](double medi) {
    while (!pending.empty() && !top_n_reached()) {
      auto it = pending.begin();
      if (it->first < medi) break;
      for (auto& rec : it->second) {
        if (top_n_reached()) break;
        PersonalizedTuple t;
        t.values = std::move(rec.values);
        t.doi = rec.doi;
        t.satisfied = std::move(rec.satisfied);
        t.failed = std::move(rec.failed);
        if (!first_emitted) {
          first_emitted = true;
          answer.stats.first_response_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
        }
        if (options.on_emit) options.on_emit(t);
        answer.tuples.push_back(std::move(t));
        --pending_count;
      }
      pending.erase(it);
    }
  };

  // One parameterized probe Q_i(t): the prepared index-walk when available,
  // otherwise `plan.query AND pk = t` through the executor. Both report the
  // truth-side hit and degree; satisfaction depends on the preference kind.
  // `ctx` caches walk frontiers for the current tuple; it belongs to the
  // calling task, so concurrent probes never share mutable state (the walks
  // and executor are safe for concurrent readers).
  // Physical rows examined by prepared walk frontiers. Each (tuple, walk)
  // frontier is computed exactly once (the per-tuple cache resets per
  // record in both the serial and pooled probe paths), so the sum is
  // deterministic at every thread count; the atomic only makes concurrent
  // accumulation exact.
  std::atomic<size_t> walk_rows_examined{0};
  const auto run_probe = [&](const PpaPrefPlan& pplan, const Value& tid,
                             ProbeContext& ctx) -> Result<ProbeOutcome> {
    std::optional<double> truth;
    if (pplan.walk_id >= 0) {
      const size_t id = static_cast<size_t>(pplan.walk_id);
      if (!ctx.valid[id]) {
        walk_rows_examined.fetch_add(
            rep.walks[id].Frontier(tid, &ctx.frontiers[id]),
            std::memory_order_relaxed);
        ctx.valid[id] = 1;
      }
      truth = pplan.condition.TruthDegree(ctx.frontiers[id]);
    } else {
      // The stored query is the satisfaction (S) or violation (A) form; for
      // 1-1 absence its WHERE holds when the preference is *satisfied*, so
      // interpret hits accordingly below via `query_hit_is_satisfaction`.
      SelectQuery q = pplan.query;
      std::vector<ExprPtr> where = sql::ConjunctsOf(q.where);
      where.push_back(
          Expr::Compare(BinaryOp::kEq, rep.tid_col, Expr::Literal(tid)));
      q.where = Expr::AndAll(std::move(where));
      QP_ASSIGN_OR_RETURN(
          exec::RowSet rows,
          executor.Execute(*sql::Query::Single(std::move(q))));
      // The S/A query's hit corresponds to: satisfaction for S plans,
      // violation (truth) for A plans. Normalize to truth-side semantics.
      const bool hit = rows.num_rows() > 0;
      double best = 0.0;
      if (hit) {
        best = rows.row(0).back().is_numeric() ? rows.row(0).back().ToNumeric()
                                               : 0.0;
        for (size_t r = 1; r < rows.num_rows(); ++r) {
          const auto& v = rows.row(r).back();
          if (v.is_numeric()) best = std::max(best, v.ToNumeric());
        }
      }
      if (pplan.kind == PreferenceKind::kAbsenceOneN) {
        // Violation query: hit == truth.
        if (hit) return ProbeOutcome{false, best};
        return ProbeOutcome{true, pplan.satisfaction_degree};
      }
      // Satisfaction query: hit == satisfied.
      if (hit) return ProbeOutcome{true, best};
      return ProbeOutcome{false, pplan.failure_degree};
    }
    if (pplan.satisfied_when_true) {
      if (truth.has_value()) return ProbeOutcome{true, *truth};
      return ProbeOutcome{false, pplan.failure_degree};
    }
    if (truth.has_value()) return ProbeOutcome{false, *truth};
    return ProbeOutcome{true, pplan.satisfaction_degree};
  };

  // Satisfaction degrees of queries not yet executed (for MEDI).
  const std::vector<PpaPrefPlan>& s_plans = rep.s_plans;
  const std::vector<PpaPrefPlan>& a_plans = rep.a_plans;
  const size_t n_base_cols = rep.n_base_cols;
  std::vector<double> all_a_degrees;
  for (const auto& p : a_plans) all_a_degrees.push_back(p.satisfaction_degree);
  const bool step3_possible = a_plans.size() >= options.L;
  const double step3_bound =
      step3_possible ? PositiveUpperBound(options.ranking, all_a_degrees) : 0.0;

  auto medi_after = [&](size_t s_done, size_t a_done) {
    std::vector<double> remaining;
    for (size_t k = s_done; k < s_plans.size(); ++k) {
      remaining.push_back(s_plans[k].satisfaction_degree);
    }
    for (size_t k = a_done; k < a_plans.size(); ++k) {
      remaining.push_back(a_plans[k].satisfaction_degree);
    }
    double medi = PositiveUpperBound(options.ranking, remaining);
    if (options.ranking.mixed_style() == MixedStyle::kCountWeighted &&
        !remaining.empty()) {
      // A tuple still unseen after `s_done` presence rounds provably fails
      // those preferences, so its count-weighted doi is at most
      // |remaining| * r+(remaining) / K — the bound decays linearly and
      // enables the paper's early progressive emission.
      const double k_total =
          static_cast<double>(s_plans.size() + a_plans.size());
      if (s_done < s_plans.size()) {
        medi *= static_cast<double>(remaining.size()) / k_total;
      } else if (!a_plans.empty()) {
        // Phase 2: new tuples are ranked on absence preferences only
        // (Figure 6), and fail every absence query already executed.
        medi *= static_cast<double>(remaining.size()) /
                static_cast<double>(a_plans.size());
      }
    }
    // Tuples surfacing only in the final complement step satisfy every 1-n
    // absence preference; hold their bound until step 3 runs.
    return std::max(medi, step3_bound);
  };

  // Ranks a completed record and queues it when it meets L. Serial only:
  // pending insertion order is part of the emission contract.
  const auto queue_record = [&](TupleRecord&& rec) {
    if (rec.satisfied.size() < options.L) return;
    std::vector<double> pos, neg;
    for (const auto& o : rec.satisfied) pos.push_back(o.degree);
    for (const auto& o : rec.failed) neg.push_back(o.degree);
    rec.doi = options.ranking.Rank(pos, neg);
    pending[rec.doi].push_back(std::move(rec));
    ++pending_count;
  };

  // ---- Phase 1: presence queries. ----
  // Each round: claim fresh tuple ids serially in row order, probe the
  // claimed tuples' remaining preferences as independent pool tasks (each
  // writes its own record slot), then queue records serially in that same
  // row order — byte-identical to the serial walk at every thread count.
  for (size_t i = 0; i < s_plans.size(); ++i) {
    if (top_n_reached()) break;
    // A tuple first seen here can satisfy at most the remaining presence
    // queries plus every absence preference.
    if (s_plans.size() - i + a_plans.size() < options.L) break;
    if (cut_before_round()) {
      cut = true;
      break;
    }
    obs::TraceSpan* round_span =
        options.trace != nullptr
            ? options.trace->AddChild(
                  "S query " + std::to_string(i + 1) + "/" +
                  std::to_string(s_plans.size()))
            : nullptr;
    obs::SpanTimer round_timer(round_span);
    auto rows_result =
        executor.Execute(*sql::Query::Single(s_plans[i].query), round_span);
    if (!rows_result.ok()) {
      if (interrupted(rows_result.status())) {
        cut = true;
        break;
      }
      return rows_result.status();
    }
    exec::RowSet rows = std::move(rows_result).value();
    std::vector<const storage::Row*> fresh;
    for (const auto& row : rows.rows()) {
      const Value& tid = row[n_base_cols];
      if (tid.is_null() || seen.count(tid) > 0) continue;
      seen.insert(tid);
      fresh.push_back(&row);
    }
    std::vector<TupleRecord> recs(fresh.size());
    const Status probe_status = RunProbeTasks(
        probe_pool, rep.walks.size(), fresh.size(),
        [&](size_t j, ProbeContext& ctx) -> Status {
          // Deadline/cancel can fire mid-batch; stopping at the next probe
          // (instead of finishing the batch) bounds the cut latency. The
          // whole round is discarded on interruption, so this never
          // changes a successful answer.
          if (options.cancel != nullptr) {
            QP_RETURN_IF_ERROR(options.cancel->Check());
          }
          ctx.Reset();
          const storage::Row& row = *fresh[j];
          const Value& tid = row[n_base_cols];
          TupleRecord& rec = recs[j];
          rec.values.assign(row.begin(), row.begin() + n_base_cols);
          const double own_degree =
              row.back().is_numeric() ? row.back().ToNumeric() : 0.0;
          rec.satisfied.push_back({s_plans[i].pref_index, own_degree});
          // Presence queries before i would have returned the tuple: failed.
          for (size_t k = 0; k < i; ++k) {
            rec.failed.push_back(
                {s_plans[k].pref_index, s_plans[k].failure_degree});
          }
          for (size_t k = i + 1; k < s_plans.size(); ++k) {
            QP_ASSIGN_OR_RETURN(ProbeOutcome outcome,
                                run_probe(s_plans[k], tid, ctx));
            if (outcome.satisfied) {
              rec.satisfied.push_back({s_plans[k].pref_index, outcome.degree});
            } else {
              rec.failed.push_back({s_plans[k].pref_index, outcome.degree});
            }
          }
          for (const auto& a : a_plans) {
            QP_ASSIGN_OR_RETURN(ProbeOutcome outcome, run_probe(a, tid, ctx));
            if (outcome.satisfied) {
              rec.satisfied.push_back({a.pref_index, outcome.degree});
            } else {
              rec.failed.push_back({a.pref_index, outcome.degree});
            }
          }
          return Status::OK();
        });
    if (!probe_status.ok()) {
      if (interrupted(probe_status)) {
        cut = true;
        break;
      }
      return probe_status;
    }
    for (TupleRecord& rec : recs) queue_record(std::move(rec));
    ++rounds_run;
    emit_ready(medi_after(i + 1, 0));
    round_timer.Stop();
    if (round_span != nullptr) {
      round_span->AddAttr("pref", s_plans[i].pref_index);
      round_span->AddAttr("est_selectivity", s_plans[i].est_selectivity);
      round_span->AddAttr("rows", rows.num_rows());
      round_span->AddAttr("fresh", fresh.size());
    }
  }

  // ---- Phase 2: absence queries. ----
  // A tuple first seen here fails at least one absence preference and no
  // presence query returned it, so it can satisfy at most |A| - 1
  // preferences. When that cannot reach L, the full absence queries still
  // run (Nids must be complete for step 3) but per-tuple probing is skipped.
  const bool phase2_can_qualify =
      a_plans.size() >= 1 && a_plans.size() - 1 >= options.L;
  for (size_t i = 0; i < a_plans.size() && !top_n_reached() && !cut; ++i) {
    if (cut_before_round()) {
      cut = true;
      break;
    }
    obs::TraceSpan* round_span =
        options.trace != nullptr
            ? options.trace->AddChild(
                  "A query " + std::to_string(i + 1) + "/" +
                  std::to_string(a_plans.size()))
            : nullptr;
    obs::SpanTimer round_timer(round_span);
    auto rows_result =
        executor.Execute(*sql::Query::Single(a_plans[i].query), round_span);
    if (!rows_result.ok()) {
      if (interrupted(rows_result.status())) {
        cut = true;
        break;
      }
      return rows_result.status();
    }
    exec::RowSet rows = std::move(rows_result).value();
    std::vector<const storage::Row*> fresh;
    for (const auto& row : rows.rows()) {
      const Value& tid = row[n_base_cols];
      if (tid.is_null()) continue;
      nids.insert(tid);
      if (!phase2_can_qualify || seen.count(tid) > 0) continue;
      seen.insert(tid);
      fresh.push_back(&row);
    }
    std::vector<TupleRecord> recs(fresh.size());
    const Status probe_status = RunProbeTasks(
        probe_pool, rep.walks.size(), fresh.size(),
        [&](size_t j, ProbeContext& ctx) -> Status {
          ctx.Reset();
          const storage::Row& row = *fresh[j];
          const Value& tid = row[n_base_cols];
          TupleRecord& rec = recs[j];
          rec.values.assign(row.begin(), row.begin() + n_base_cols);
          const double own_degree =
              row.back().is_numeric() ? row.back().ToNumeric() : 0.0;
          rec.failed.push_back({a_plans[i].pref_index, own_degree});
          // Absence queries before i did not return the tuple: satisfied.
          for (size_t k = 0; k < i; ++k) {
            rec.satisfied.push_back(
                {a_plans[k].pref_index, a_plans[k].satisfaction_degree});
          }
          for (size_t k = i + 1; k < a_plans.size(); ++k) {
            QP_ASSIGN_OR_RETURN(ProbeOutcome outcome,
                                run_probe(a_plans[k], tid, ctx));
            if (outcome.satisfied) {
              rec.satisfied.push_back({a_plans[k].pref_index, outcome.degree});
            } else {
              rec.failed.push_back({a_plans[k].pref_index, outcome.degree});
            }
          }
          return Status::OK();
        });
    if (!probe_status.ok()) {
      if (interrupted(probe_status)) {
        cut = true;
        break;
      }
      return probe_status;
    }
    // Per Figure 6, phase-2 tuples are ranked on absence preferences only.
    for (TupleRecord& rec : recs) queue_record(std::move(rec));
    ++rounds_run;
    emit_ready(medi_after(s_plans.size(), i + 1));
    round_timer.Stop();
    if (round_span != nullptr) {
      round_span->AddAttr("pref", a_plans[i].pref_index);
      round_span->AddAttr("est_selectivity", a_plans[i].est_selectivity);
      round_span->AddAttr("rows", rows.num_rows());
      round_span->AddAttr("fresh", fresh.size());
    }
  }

  // ---- Step 3: tuples never returned by any absence query satisfy every
  // 1-n absence preference. ----
  if (step3_possible && !top_n_reached() && !cut && cut_before_round()) {
    cut = true;
  }
  if (step3_possible && !top_n_reached() && !cut) {
    obs::TraceSpan* step3_span =
        options.trace != nullptr
            ? options.trace->AddChild("complement scan (step 3)")
            : nullptr;
    obs::SpanTimer step3_timer(step3_span);
    auto rows_result =
        executor.Execute(*sql::Query::Single(rep.base2), step3_span);
    if (!rows_result.ok() && !interrupted(rows_result.status())) {
      return rows_result.status();
    }
    if (!rows_result.ok()) {
      cut = true;
    } else {
      exec::RowSet rows = std::move(rows_result).value();
      size_t complement_fresh = 0;
      for (const auto& row : rows.rows()) {
        const Value& tid = row[n_base_cols];
        if (tid.is_null() || seen.count(tid) > 0 || nids.count(tid) > 0) {
          continue;
        }
        seen.insert(tid);
        TupleRecord rec;
        rec.values.assign(row.begin(), row.begin() + n_base_cols);
        std::vector<double> pos;
        for (const auto& a : a_plans) {
          rec.satisfied.push_back({a.pref_index, a.satisfaction_degree});
          pos.push_back(a.satisfaction_degree);
        }
        rec.doi = options.ranking.Rank(pos, {});
        pending[rec.doi].push_back(std::move(rec));
        ++pending_count;
        ++complement_fresh;
      }
      ++rounds_run;
      step3_timer.Stop();
      if (step3_span != nullptr) {
        step3_span->AddAttr("rows", rows.num_rows());
        step3_span->AddAttr("fresh", complement_fresh);
      }
    }
  }

  // ---- Flush everything left, best first. ----
  // A cut answer keeps only the MEDI-safe prefix already emitted: flushing
  // pending tuples here would make the payload depend on where inside a
  // round the deadline fired.
  if (!cut) emit_ready(-std::numeric_limits<double>::infinity());

  const auto end = std::chrono::steady_clock::now();
  answer.stats.generation_seconds =
      std::chrono::duration<double>(end - start).count();
  if (!first_emitted) {
    answer.stats.first_response_seconds = answer.stats.generation_seconds;
  }
  const exec::ExecStats exec_stats = executor.stats();
  answer.stats.queries_executed = exec_stats.queries_executed;
  answer.stats.tuples_returned = answer.tuples.size();
  answer.stats.rows_scanned = exec_stats.rows_scanned;
  answer.stats.rows_joined = exec_stats.rows_joined;
  answer.stats.rows_materialized = exec_stats.rows_output;
  answer.stats.paths_scan = exec_stats.paths_scan;
  answer.stats.paths_probe = exec_stats.paths_probe;
  answer.stats.paths_range = exec_stats.paths_range;
  answer.stats.thread_seconds = executor.thread_seconds();
  answer.stats.rows_examined =
      executor.rows_examined() +
      walk_rows_examined.load(std::memory_order_relaxed);
  answer.stats.partial = cut;
  answer.stats.rounds_run = rounds_run;
  if (options.trace != nullptr) {
    // Always the last child regardless of when emission actually happened,
    // so the span tree's shape does not depend on timing.
    obs::TraceSpan* fr = options.trace->AddChild("first_response");
    fr->set_seconds(answer.stats.first_response_seconds);
  }
  return answer;
}

}  // namespace qp::core
