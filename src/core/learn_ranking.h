// Learning the appropriate ranking function per user (Section 6.3):
// "Overall, experimental results have indicated that the three ranking
// functions discussed here capture real users' ranking philosophy.
// Therefore, it seems possible to learn the most appropriate ranking
// function per user. This information could be stored as part of the
// user's profile."
//
// The learner collects (satisfied degrees, failed degrees, reported
// interest) feedback — e.g. from the paper's per-tuple questionnaire — and
// fits the candidate combination styles by mean absolute error.

#pragma once

#include <vector>

#include "common/status.h"
#include "core/answer.h"
#include "core/ranking.h"

namespace qp::core {

/// \brief One observation: how interesting the user found a tuple whose
/// preference outcomes are known.
struct RankingFeedback {
  std::vector<double> satisfied_degrees;  ///< each in [0, 1]
  std::vector<double> failed_degrees;     ///< each in [-1, 0]
  /// The user's reported interest, normalized to [-1, 1] (divide the
  /// paper's [-10, 10] questionnaire score by 10).
  double reported_interest = 0.0;
};

/// \brief Fits combination styles to per-tuple feedback.
class RankingFunctionLearner {
 public:
  /// Adds one observation; reports InvalidArgument for out-of-range values.
  Status AddFeedback(RankingFeedback feedback);

  /// Convenience: derives the degree lists from a personalized tuple
  /// (PPA answers carry them) plus the user's reported score in [-10, 10].
  Status AddFeedback(const PersonalizedTuple& tuple, double reported_score);

  size_t num_observations() const { return feedback_.size(); }

  /// Goodness of one style/mixed combination over the collected feedback.
  struct Fit {
    CombinationStyle style = CombinationStyle::kInflationary;
    MixedStyle mixed = MixedStyle::kCountWeighted;
    double mean_abs_error = 0.0;
  };

  /// Evaluates every (style, mixed) combination, best first. Fails if no
  /// feedback was collected.
  Result<std::vector<Fit>> Evaluate() const;

  /// The best-fitting ranking function.
  Result<RankingFunction> Best() const;

 private:
  std::vector<RankingFeedback> feedback_;
};

}  // namespace qp::core
