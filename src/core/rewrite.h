// Preference integration: turning a selected (implicit) preference into the
// SQL fragments SPA and PPA need (Section 5, Example 6).
//
// A preference is classified relative to the query:
//   presence     — satisfaction means its condition holds (q true);
//   1-1 absence  — satisfaction means q fails, and the preference sits on a
//                  query relation itself (no joins), so failure is testable
//                  tuple-by-tuple with a negated operator;
//   1-n absence  — satisfaction means q fails but the condition is reached
//                  through joins; a tuple satisfies it only when *no* join
//                  partner matches, requiring a NOT IN subquery.
//
// Elastic conditions are translated to range predicates over the elastic
// function's support, and their per-tuple degree is computed by an embedded
// scalar function, exactly as "the corresponding elastic function provides
// the doi in each tuple".

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "core/preference.h"
#include "sql/query.h"
#include "storage/database.h"

namespace qp::core {

/// Classification of a selected preference relative to a query.
enum class PreferenceKind {
  kPresence,
  kAbsenceOneOne,
  kAbsenceOneN,
};

const char* PreferenceKindName(PreferenceKind k);

/// Classifies by satisfaction branch and path shape.
PreferenceKind ClassifyPreference(const ImplicitPreference& pref);

/// \brief The SQL building blocks derived from one preference.
struct RewrittenPreference {
  PreferenceKind kind = PreferenceKind::kPresence;

  /// FROM additions: the path's relations (presence / 1-n violation form).
  std::vector<sql::TableRef> extra_from;

  /// Join conditions along the path plus the truth-form (range-translated)
  /// selection condition; references base-query aliases and path tables.
  sql::ExprPtr presence_condition;

  /// Condition for satisfaction *by absence* (1-1 only): negated operator,
  /// or the complement of the elastic range.
  sql::ExprPtr negated_condition;

  /// Per-tuple degree of a tuple that makes the condition TRUE: a literal,
  /// or a scalar-function expression for elastic preferences.
  sql::ExprPtr true_degree_expr;

  /// Composed characteristic degrees (join product applied).
  double satisfaction_degree = 0.0;  ///< d0+ >= 0
  double failure_degree = 0.0;       ///< d0- <= 0

  /// True when satisfaction means the condition holds.
  bool satisfied_when_true = true;
};

/// \brief Builds subqueries for preference integration.
class QueryRewriter {
 public:
  explicit QueryRewriter(const storage::Database* db) : db_(db) {}

  /// Derives the SQL building blocks for `pref` against `base`. Fails if a
  /// path relation clashes with a base-query alias.
  Result<RewrittenPreference> Rewrite(const sql::SelectQuery& base,
                                      const ImplicitPreference& pref) const;

  /// SPA-style satisfaction subquery: the base query extended so returned
  /// tuples satisfy `pref`, selecting `base.select` + a degree column
  /// (Example 6, Q1-Q3).
  Result<sql::SelectQuery> BuildSatisfactionQuery(
      const sql::SelectQuery& base, const ImplicitPreference& pref) const;

  /// PPA violation query for absence preferences: returned tuples FAIL
  /// `pref`. Selects `base.select` + the (negative) per-tuple degree.
  Result<sql::SelectQuery> BuildViolationQuery(
      const sql::SelectQuery& base, const ImplicitPreference& pref) const;

  /// Resolves the alias used for `relation` in the base query (the anchor
  /// side of path conditions), or the relation name if not found.
  static std::string BaseAlias(const sql::SelectQuery& base,
                               const std::string& relation);

  /// Qualifies every unqualified column reference in `base` against its
  /// FROM sources. Required before integration: extending the FROM list
  /// would otherwise make base columns ambiguous. Fails on names that are
  /// already ambiguous within the base query.
  Result<sql::SelectQuery> QualifyColumns(const sql::SelectQuery& base) const;

 private:
  /// Appends `pref`'s path relations / conditions in truth form.
  Result<RewrittenPreference> BuildParts(const sql::SelectQuery& base,
                                         const ImplicitPreference& pref) const;

  const storage::Database* db_;
};

}  // namespace qp::core
