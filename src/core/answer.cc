#include "core/answer.h"

#include <algorithm>

#include "common/string_util.h"

namespace qp::core {

std::string PersonalizedAnswer::ExplainTuple(size_t i) const {
  const PersonalizedTuple& t = tuples[i];
  std::string out = "(";
  for (size_t c = 0; c < t.values.size(); ++c) {
    if (c > 0) out += ", ";
    out += t.values[c].ToString();
  }
  out += ")  doi=" + FormatDouble(t.doi, 4);
  if (!t.satisfied.empty() || !t.failed.empty()) {
    out += "\n  satisfies:";
    if (t.satisfied.empty()) out += " (none)";
    for (const auto& o : t.satisfied) {
      out += "\n    [" + FormatDouble(o.degree, 3) + "] " +
             preferences[o.pref_index].pref.ConditionString();
    }
    out += "\n  fails:";
    if (t.failed.empty()) out += " (none)";
    for (const auto& o : t.failed) {
      out += "\n    [" + FormatDouble(o.degree, 3) + "] " +
             preferences[o.pref_index].pref.ConditionString();
    }
  }
  return out;
}

std::string PersonalizedAnswer::ToString(size_t max_rows) const {
  exec::RowSet rs(columns);
  std::vector<exec::OutputColumn> cols = columns;
  cols.push_back({"", "doi"});
  exec::RowSet view(cols);
  const size_t shown = std::min(max_rows, tuples.size());
  for (size_t i = 0; i < shown; ++i) {
    storage::Row row = tuples[i].values;
    row.push_back(storage::Value(tuples[i].doi));
    view.Add(std::move(row));
  }
  std::string out = view.ToString(max_rows);
  if (shown < tuples.size()) {
    out += "... (" + std::to_string(tuples.size() - shown) + " more)\n";
  }
  return out;
}

bool SameAnswerPayload(const PersonalizedAnswer& a,
                       const PersonalizedAnswer& b) {
  return a.columns == b.columns && a.tuples == b.tuples &&
         a.preferences == b.preferences &&
         a.stats.queries_executed == b.stats.queries_executed &&
         a.stats.tuples_returned == b.stats.tuples_returned &&
         a.stats.rows_scanned == b.stats.rows_scanned &&
         a.stats.rows_joined == b.stats.rows_joined &&
         a.stats.rows_materialized == b.stats.rows_materialized &&
         a.stats.paths_scan == b.stats.paths_scan &&
         a.stats.paths_probe == b.stats.paths_probe &&
         a.stats.paths_range == b.stats.paths_range &&
         a.stats.partial == b.stats.partial &&
         a.stats.rounds_run == b.stats.rounds_run;
}

}  // namespace qp::core
