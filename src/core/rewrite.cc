#include "core/rewrite.h"

#include "common/string_util.h"

namespace qp::core {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprPtr;
using sql::SelectQuery;
using sql::TableRef;
using storage::Value;

const char* PreferenceKindName(PreferenceKind k) {
  switch (k) {
    case PreferenceKind::kPresence:
      return "presence";
    case PreferenceKind::kAbsenceOneOne:
      return "absence-1-1";
    case PreferenceKind::kAbsenceOneN:
      return "absence-1-n";
  }
  return "?";
}

PreferenceKind ClassifyPreference(const ImplicitPreference& pref) {
  if (pref.selection().doi.SatisfiedWhenTrue()) {
    return PreferenceKind::kPresence;
  }
  return pref.joins().empty() ? PreferenceKind::kAbsenceOneOne
                              : PreferenceKind::kAbsenceOneN;
}

std::string QueryRewriter::BaseAlias(const SelectQuery& base,
                                     const std::string& relation) {
  for (const auto& ref : base.from) {
    if (ref.derived == nullptr && EqualsIgnoreCase(ref.table, relation)) {
      return ToLower(ref.EffectiveAlias());
    }
  }
  return relation;
}

namespace {

/// The truth range of an elastic condition: the support of the elastic
/// component (preferring dT).
const DoiFunction* ElasticComponent(const DoiPair& doi) {
  if (doi.d_true().is_elastic()) return &doi.d_true();
  if (doi.d_false().is_elastic()) return &doi.d_false();
  return nullptr;
}

/// Truth-form condition of the atomic selection: exact operator, or range
/// over the elastic support.
ExprPtr TruthCondition(const SelectionPreference& sel,
                       const std::string& qualifier) {
  ExprPtr col = Expr::Column(qualifier, sel.condition.attr.column);
  const DoiFunction* elastic = ElasticComponent(sel.doi);
  if (elastic == nullptr) {
    return Expr::Compare(sel.condition.op, col,
                         Expr::Literal(sel.condition.value));
  }
  return Expr::And(
      Expr::Compare(BinaryOp::kGe, col, Expr::Literal(Value(elastic->support_lo()))),
      Expr::Compare(BinaryOp::kLe, col, Expr::Literal(Value(elastic->support_hi()))));
}

/// Complement of the truth-form condition (1-1 absence satisfaction).
ExprPtr FalseCondition(const SelectionPreference& sel,
                       const std::string& qualifier) {
  ExprPtr col = Expr::Column(qualifier, sel.condition.attr.column);
  const DoiFunction* elastic = ElasticComponent(sel.doi);
  if (elastic == nullptr) {
    return Expr::Compare(sql::NegateOp(sel.condition.op), col,
                         Expr::Literal(sel.condition.value));
  }
  return Expr::Or(
      Expr::Compare(BinaryOp::kLt, col, Expr::Literal(Value(elastic->support_lo()))),
      Expr::Compare(BinaryOp::kGt, col, Expr::Literal(Value(elastic->support_hi()))));
}

/// Per-tuple degree of a tuple making the condition true: j * dT(u).
ExprPtr TrueDegreeExpr(const SelectionPreference& sel, double join_product,
                       const std::string& qualifier) {
  const DoiFunction& d_true = sel.doi.d_true();
  if (!d_true.is_elastic()) {
    return Expr::Literal(Value(join_product * d_true.degree()));
  }
  DoiFunction fn = d_true;
  return Expr::ScalarFn(
      "elastic_doi",
      [fn, join_product](const Value& v) {
        return Value(join_product * fn.Eval(v));
      },
      Expr::Column(qualifier, sel.condition.attr.column));
}

}  // namespace

namespace {

/// Column vocabulary of one base-query source.
struct SourceColumns {
  std::string alias;
  std::vector<std::string> columns;
};

Result<ExprPtr> QualifyExpr(const ExprPtr& e,
                            const std::vector<SourceColumns>& sources) {
  if (e == nullptr) return ExprPtr(nullptr);
  switch (e->kind()) {
    case sql::ExprKind::kColumnRef: {
      if (!e->table().empty() || e->column() == "*") return e;
      const SourceColumns* found = nullptr;
      for (const auto& src : sources) {
        for (const auto& col : src.columns) {
          if (EqualsIgnoreCase(col, e->column())) {
            if (found != nullptr && found != &src) {
              return Status::InvalidArgument(
                  "ambiguous column '" + e->column() + "' in base query");
            }
            found = &src;
          }
        }
      }
      if (found == nullptr) return e;  // e.g. an output-alias reference
      return Expr::Column(found->alias, e->column());
    }
    case sql::ExprKind::kComparison: {
      QP_ASSIGN_OR_RETURN(ExprPtr l, QualifyExpr(e->left(), sources));
      QP_ASSIGN_OR_RETURN(ExprPtr r, QualifyExpr(e->right(), sources));
      return Expr::Compare(e->op(), std::move(l), std::move(r));
    }
    case sql::ExprKind::kAnd: {
      QP_ASSIGN_OR_RETURN(ExprPtr l, QualifyExpr(e->left(), sources));
      QP_ASSIGN_OR_RETURN(ExprPtr r, QualifyExpr(e->right(), sources));
      return Expr::And(std::move(l), std::move(r));
    }
    case sql::ExprKind::kOr: {
      QP_ASSIGN_OR_RETURN(ExprPtr l, QualifyExpr(e->left(), sources));
      QP_ASSIGN_OR_RETURN(ExprPtr r, QualifyExpr(e->right(), sources));
      return Expr::Or(std::move(l), std::move(r));
    }
    case sql::ExprKind::kNot: {
      QP_ASSIGN_OR_RETURN(ExprPtr x, QualifyExpr(e->operand(), sources));
      return Expr::Not(std::move(x));
    }
    case sql::ExprKind::kInSubquery: {
      QP_ASSIGN_OR_RETURN(ExprPtr needle, QualifyExpr(e->left(), sources));
      return Expr::InSubquery(std::move(needle), e->subquery(), e->negated());
    }
    case sql::ExprKind::kAggregateCall: {
      QP_ASSIGN_OR_RETURN(ExprPtr arg, QualifyExpr(e->argument(), sources));
      return Expr::Aggregate(e->function(), std::move(arg));
    }
    default:
      return e;
  }
}

}  // namespace

Result<SelectQuery> QueryRewriter::QualifyColumns(
    const SelectQuery& base) const {
  std::vector<SourceColumns> sources;
  for (const auto& ref : base.from) {
    SourceColumns src;
    src.alias = ToLower(ref.EffectiveAlias());
    if (ref.derived != nullptr) {
      for (const auto& item : ref.derived->branches().front().select) {
        src.columns.push_back(item.OutputName());
      }
    } else {
      QP_ASSIGN_OR_RETURN(const storage::Table* table,
                          db_->GetTable(ref.table));
      for (const auto& col : table->schema().columns()) {
        src.columns.push_back(col.name);
      }
    }
    sources.push_back(std::move(src));
  }
  SelectQuery out = base;
  for (auto& item : out.select) {
    QP_ASSIGN_OR_RETURN(item.expr, QualifyExpr(item.expr, sources));
  }
  QP_ASSIGN_OR_RETURN(out.where, QualifyExpr(out.where, sources));
  for (auto& g : out.group_by) {
    QP_ASSIGN_OR_RETURN(g, QualifyExpr(g, sources));
  }
  QP_ASSIGN_OR_RETURN(out.having, QualifyExpr(out.having, sources));
  for (auto& o : out.order_by) {
    QP_ASSIGN_OR_RETURN(o.expr, QualifyExpr(o.expr, sources));
  }
  return out;
}

Result<RewrittenPreference> QueryRewriter::BuildParts(
    const SelectQuery& base, const ImplicitPreference& pref) const {
  if (!pref.has_selection()) {
    return Status::InvalidArgument(
        "only selection preferences can be integrated into a query");
  }
  RewrittenPreference out;
  out.kind = ClassifyPreference(pref);
  out.satisfied_when_true = pref.selection().doi.SatisfiedWhenTrue();
  const double join_product = pref.JoinDegreeProduct();
  out.satisfaction_degree =
      join_product * pref.selection().doi.SatisfactionDegree();
  out.failure_degree = join_product * pref.selection().doi.FailureDegree();

  // Path relations join into the base query; the anchor side uses the base
  // query's alias for the anchor relation.
  std::vector<ExprPtr> conditions;
  for (size_t i = 0; i < pref.joins().size(); ++i) {
    const JoinPreference& join = pref.joins()[i];
    const std::string left_qualifier =
        i == 0 ? BaseAlias(base, join.from.table) : join.from.table;
    // Guard against alias collisions with the base query.
    for (const auto& ref : base.from) {
      if (EqualsIgnoreCase(ref.EffectiveAlias(), join.to.table)) {
        return Status::InvalidArgument(
            "path relation '" + join.to.table +
            "' collides with a base-query alias; cannot integrate preference " +
            pref.ToString());
      }
    }
    out.extra_from.push_back(TableRef{join.to.table, "", nullptr});
    conditions.push_back(
        Expr::Compare(BinaryOp::kEq,
                      Expr::Column(left_qualifier, join.from.column),
                      Expr::Column(join.to.table, join.to.column)));
  }

  const std::string target_qualifier =
      pref.joins().empty()
          ? BaseAlias(base, pref.selection().condition.attr.table)
          : pref.selection().condition.attr.table;
  conditions.push_back(TruthCondition(pref.selection(), target_qualifier));
  out.presence_condition = Expr::AndAll(std::move(conditions));
  out.negated_condition = FalseCondition(pref.selection(), target_qualifier);
  out.true_degree_expr =
      TrueDegreeExpr(pref.selection(), join_product, target_qualifier);
  return out;
}

Result<RewrittenPreference> QueryRewriter::Rewrite(
    const SelectQuery& base, const ImplicitPreference& pref) const {
  return BuildParts(base, pref);
}

Result<SelectQuery> QueryRewriter::BuildSatisfactionQuery(
    const SelectQuery& raw_base, const ImplicitPreference& pref) const {
  QP_ASSIGN_OR_RETURN(SelectQuery base, QualifyColumns(raw_base));
  QP_ASSIGN_OR_RETURN(RewrittenPreference parts, BuildParts(base, pref));
  SelectQuery q = base;
  q.order_by.clear();
  q.limit.reset();

  switch (parts.kind) {
    case PreferenceKind::kPresence: {
      for (auto& ref : parts.extra_from) q.from.push_back(ref);
      std::vector<ExprPtr> where = sql::ConjunctsOf(q.where);
      where.push_back(parts.presence_condition);
      q.where = Expr::AndAll(std::move(where));
      q.select.push_back({parts.true_degree_expr, "degree"});
      return q;
    }
    case PreferenceKind::kAbsenceOneOne: {
      std::vector<ExprPtr> where = sql::ConjunctsOf(q.where);
      where.push_back(parts.negated_condition);
      q.where = Expr::AndAll(std::move(where));
      q.select.push_back(
          {Expr::Literal(Value(parts.satisfaction_degree)), "degree"});
      return q;
    }
    case PreferenceKind::kAbsenceOneN: {
      // Tuple satisfies the preference iff its anchor key joins to no
      // violating partner: anchor.pk NOT IN (inner violation query).
      const std::string& anchor = pref.AnchorRelation();
      QP_ASSIGN_OR_RETURN(const storage::Table* anchor_table,
                          db_->GetTable(anchor));
      const auto& pk = anchor_table->schema().primary_key();
      if (pk.size() != 1) {
        return Status::InvalidArgument(
            "1-n absence preference needs a single-column primary key on '" +
            anchor + "'");
      }
      // Inner query over a fresh copy of the anchor + path relations. The
      // anchor keeps its table name as alias; path conditions in BuildParts
      // were anchored against the *base* alias, so rebuild them against a
      // standalone base.
      SelectQuery inner_base;
      inner_base.from.push_back(TableRef{anchor, "", nullptr});
      inner_base.select.push_back({Expr::Column(anchor, pk[0]), ""});
      QP_ASSIGN_OR_RETURN(RewrittenPreference inner_parts,
                          BuildParts(inner_base, pref));
      SelectQuery inner = inner_base;
      for (auto& ref : inner_parts.extra_from) inner.from.push_back(ref);
      inner.where = inner_parts.presence_condition;

      const std::string base_anchor_alias = BaseAlias(base, anchor);
      std::vector<ExprPtr> where = sql::ConjunctsOf(q.where);
      where.push_back(Expr::InSubquery(
          Expr::Column(base_anchor_alias, pk[0]),
          sql::Query::Single(std::move(inner)), /*negated=*/true));
      q.where = Expr::AndAll(std::move(where));
      q.select.push_back(
          {Expr::Literal(Value(parts.satisfaction_degree)), "degree"});
      return q;
    }
  }
  return Status::Internal("unreachable");
}

Result<SelectQuery> QueryRewriter::BuildViolationQuery(
    const SelectQuery& raw_base, const ImplicitPreference& pref) const {
  QP_ASSIGN_OR_RETURN(SelectQuery base, QualifyColumns(raw_base));
  QP_ASSIGN_OR_RETURN(RewrittenPreference parts, BuildParts(base, pref));
  if (parts.kind == PreferenceKind::kPresence) {
    return Status::InvalidArgument(
        "violation queries are built for absence preferences only");
  }
  SelectQuery q = base;
  q.order_by.clear();
  q.limit.reset();
  for (auto& ref : parts.extra_from) q.from.push_back(ref);
  std::vector<ExprPtr> where = sql::ConjunctsOf(q.where);
  where.push_back(parts.presence_condition);
  q.where = Expr::AndAll(std::move(where));
  // A returned tuple makes the condition true, which for an absence
  // preference is its failure: degree = j * dT(u) <= 0.
  q.select.push_back({parts.true_degree_expr, "degree"});
  return q;
}

}  // namespace qp::core
