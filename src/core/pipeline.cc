#include "core/pipeline.h"

#include <algorithm>

#include "sql/parser.h"

namespace qp::core {

Result<ResolvedPersonalization> ResolvePersonalization(
    const PersonalizeOptions& options, const UserProfile& profile) {
  ResolvedPersonalization out;
  out.ranking = options.use_profile_ranking
                    ? profile.PreferredRankingOr(options.ranking)
                    : options.ranking;
  if (options.descriptor.has_value()) {
    const DescriptorRegistry default_registry = DescriptorRegistry::Default();
    const DescriptorRegistry* registry = options.descriptors != nullptr
                                             ? options.descriptors
                                             : &default_registry;
    QP_ASSIGN_OR_RETURN(out.interval, registry->Lookup(*options.descriptor));
  }
  return out;
}

Result<std::vector<SelectedPreference>> RunSelection(
    const PersonalizationGraph& graph, const sql::SelectQuery& query,
    const PersonalizeOptions& options,
    const ResolvedPersonalization& resolved) {
  const QueryContext ctx = QueryContext::FromQuery(query);
  PreferenceSelector selector(&graph);
  std::optional<double> target = options.target_doi;
  if (!target.has_value() && resolved.interval.has_value()) {
    target = std::max(0.0, resolved.interval->lo);
  }
  if (target.has_value()) {
    PreferenceSelector::DoiTargetOptions doi_options;
    doi_options.target_doi = *target;
    doi_options.ranking = resolved.ranking;
    return selector.SelectByResultInterest(ctx, doi_options);
  }
  SelectionCriterion criterion{options.k, options.min_criticality};
  if (options.selection == SelectionAlgorithm::kSps) {
    return selector.SelectSPS(ctx, criterion);
  }
  return selector.SelectFakeCrit(ctx, criterion);
}

Status ValidateSelection(const std::vector<SelectedPreference>& preferences,
                         const PersonalizeOptions& options) {
  if (preferences.empty()) {
    return Status::NotFound(
        "no preferences in the profile relate to this query");
  }
  if (options.l > preferences.size()) {
    return Status::InvalidQuery(
        "L = " + std::to_string(options.l) + " exceeds the " +
        std::to_string(preferences.size()) + " selected preferences");
  }
  return Status::OK();
}

Result<IntegrationPlan> BuildIntegrationPlan(
    const storage::Database* db, stats::StatsManager* stats,
    const sql::SelectQuery& query,
    const std::vector<SelectedPreference>& preferences,
    const PersonalizeOptions& options) {
  IntegrationPlan plan;
  plan.algorithm = options.algorithm;
  if (options.algorithm == AnswerAlgorithm::kSpa) {
    // Planning needs neither the ranking nor exec options (both bind at
    // execution time), so a default-configured generator builds the plan.
    SpaGenerator spa(db, options.ranking);
    QP_ASSIGN_OR_RETURN(plan.spa,
                        spa.BuildPlan(query, preferences, options.l));
  } else {
    PpaGenerator ppa(db, stats);
    QP_ASSIGN_OR_RETURN(plan.ppa, ppa.BuildPlan(query, preferences));
  }
  return plan;
}

Result<PersonalizedAnswer> ExecuteIntegrationPlan(
    const storage::Database* db, const IntegrationPlan& plan,
    const PersonalizeOptions& options,
    const ResolvedPersonalization& resolved) {
  obs::TraceSpan* exec_span =
      options.trace != nullptr
          ? options.trace->AddChild(
                plan.algorithm == AnswerAlgorithm::kSpa ? "execute: spa"
                                                        : "execute: ppa")
          : nullptr;
  obs::SpanTimer exec_timer(exec_span);
  if (plan.algorithm == AnswerAlgorithm::kSpa) {
    exec::ExecOptions spa_exec = options.EffectiveExec();
    if (spa_exec.cancel == nullptr) spa_exec.cancel = options.cancel;
    SpaGenerator spa(db, resolved.ranking, spa_exec);
    QP_ASSIGN_OR_RETURN(PersonalizedAnswer answer,
                        spa.GenerateWithPlan(plan.spa, exec_span));
    if (options.top_n > 0 && answer.tuples.size() > options.top_n) {
      answer.tuples.resize(options.top_n);
      answer.stats.tuples_returned = answer.tuples.size();
    }
    exec_timer.Stop();
    if (exec_span != nullptr) {
      exec_span->AddAttr("tuples", answer.tuples.size());
    }
    return answer;
  }
  // PPA execution reads the plan only; stats mattered at planning time.
  PpaGenerator ppa(db, nullptr);
  PpaGenerator::Options ppa_options;
  ppa_options.L = options.l;
  ppa_options.ranking = resolved.ranking;
  ppa_options.on_emit = options.on_emit;
  ppa_options.top_n = options.top_n;
  ppa_options.exec = options.EffectiveExec();
  ppa_options.trace = exec_span;
  ppa_options.cancel = options.cancel;
  QP_ASSIGN_OR_RETURN(PersonalizedAnswer answer,
                      ppa.GenerateWithPlan(plan.ppa, ppa_options));
  exec_timer.Stop();
  if (exec_span != nullptr) {
    exec_span->AddAttr("tuples", answer.tuples.size());
  }
  return answer;
}

void FinalizeAnswer(const ResolvedPersonalization& resolved,
                    double selection_seconds, PersonalizedAnswer& answer) {
  answer.stats.selection_seconds = selection_seconds;
  if (resolved.interval.has_value()) {
    // Keep only tuples whose doi falls in the descriptor's interval.
    std::vector<PersonalizedTuple> kept;
    for (auto& t : answer.tuples) {
      if (resolved.interval->Contains(t.doi)) kept.push_back(std::move(t));
    }
    answer.tuples = std::move(kept);
    answer.stats.tuples_returned = answer.tuples.size();
  }
}

Result<sql::SelectQuery> ParseSingleSelect(const std::string& sql) {
  QP_ASSIGN_OR_RETURN(sql::QueryPtr query, sql::ParseQuery(sql));
  if (query->is_union()) {
    return Status::InvalidQuery(
        "personalization applies to a single SELECT block");
  }
  return query->single();
}

}  // namespace qp::core
