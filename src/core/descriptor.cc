#include "core/descriptor.h"

#include "common/string_util.h"

namespace qp::core {

DescriptorRegistry DescriptorRegistry::Default() {
  DescriptorRegistry r;
  (void)r.Define("best", 0.85, 1.0);
  (void)r.Define("good", 0.6, 1.0);
  (void)r.Define("fair", 0.3, 1.0);
  (void)r.Define("weak", 0.0, 0.3);
  (void)r.Define("unwanted", -1.0, 0.0);
  return r;
}

Status DescriptorRegistry::Define(const std::string& name, double lo,
                                  double hi) {
  if (name.empty()) {
    return Status::InvalidArgument("descriptor name must be non-empty");
  }
  if (!(lo <= hi) || lo < -1.0 || hi > 1.0) {
    return Status::InvalidArgument(
        "descriptor interval must satisfy -1 <= lo <= hi <= 1");
  }
  intervals_[ToLower(name)] = {lo, hi};
  return Status::OK();
}

Result<DoiInterval> DescriptorRegistry::Lookup(const std::string& name) const {
  auto it = intervals_.find(ToLower(name));
  if (it == intervals_.end()) {
    return Status::NotFound("unknown descriptor '" + name + "'");
  }
  return it->second;
}

std::string DescriptorRegistry::Describe(double doi) const {
  std::string best;
  double best_width = 3.0;
  for (const auto& [name, interval] : intervals_) {
    if (!interval.Contains(doi)) continue;
    const double width = interval.hi - interval.lo;
    if (width < best_width) {
      best_width = width;
      best = name;
    }
  }
  return best;
}

std::vector<std::string> DescriptorRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(intervals_.size());
  for (const auto& [name, interval] : intervals_) out.push_back(name);
  return out;
}

}  // namespace qp::core
