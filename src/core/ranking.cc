#include "core/ranking.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace qp::core {

const char* CombinationStyleName(CombinationStyle s) {
  switch (s) {
    case CombinationStyle::kInflationary:
      return "inflationary";
    case CombinationStyle::kDominant:
      return "dominant";
    case CombinationStyle::kReserved:
      return "reserved";
  }
  return "?";
}

const char* MixedStyleName(MixedStyle s) {
  switch (s) {
    case MixedStyle::kSum:
      return "sum";
    case MixedStyle::kCountWeighted:
      return "count-weighted";
  }
  return "?";
}

Result<CombinationStyle> ParseCombinationStyle(const std::string& name) {
  for (auto style : {CombinationStyle::kInflationary,
                     CombinationStyle::kDominant,
                     CombinationStyle::kReserved}) {
    if (EqualsIgnoreCase(name, CombinationStyleName(style))) return style;
  }
  return Status::NotFound("unknown combination style '" + name + "'");
}

Result<MixedStyle> ParseMixedStyle(const std::string& name) {
  for (auto mixed : {MixedStyle::kSum, MixedStyle::kCountWeighted}) {
    if (EqualsIgnoreCase(name, MixedStyleName(mixed))) return mixed;
  }
  return Status::NotFound("unknown mixed style '" + name + "'");
}

double CombinePositive(CombinationStyle style,
                       const std::vector<double>& degrees) {
  if (degrees.empty()) return 0.0;
  switch (style) {
    case CombinationStyle::kInflationary: {
      double product = 1.0;
      for (double d : degrees) product *= (1.0 - d);
      return 1.0 - product;
    }
    case CombinationStyle::kDominant:
      return *std::max_element(degrees.begin(), degrees.end());
    case CombinationStyle::kReserved: {
      double product = 1.0;
      for (double d : degrees) product *= (1.0 - d);
      return 1.0 - std::pow(product, 1.0 / degrees.size());
    }
  }
  return 0.0;
}

double CombineNegative(CombinationStyle style,
                       const std::vector<double>& degrees) {
  if (degrees.empty()) return 0.0;
  // Mirror image: negate, combine positively, negate back.
  std::vector<double> mirrored;
  mirrored.reserve(degrees.size());
  for (double d : degrees) mirrored.push_back(-d);
  return -CombinePositive(style, mirrored);
}

double RankingFunction::Rank(const std::vector<double>& positive,
                             const std::vector<double>& negative) const {
  const double r_pos = CombinePositive(positive_, positive);
  const double r_neg = CombineNegative(negative_, negative);
  switch (mixed_) {
    case MixedStyle::kSum:
      return r_pos + r_neg;
    case MixedStyle::kCountWeighted: {
      const double n_pos = static_cast<double>(positive.size());
      const double n_neg = static_cast<double>(negative.size());
      if (n_pos + n_neg == 0.0) return 0.0;
      return (n_pos * r_pos + n_neg * r_neg) / (n_pos + n_neg);
    }
  }
  return 0.0;
}

std::string RankingFunction::ToString() const {
  std::string out = CombinationStyleName(positive_);
  if (negative_ != positive_) {
    out += "/";
    out += CombinationStyleName(negative_);
  }
  out += "+";
  out += MixedStyleName(mixed_);
  return out;
}

}  // namespace qp::core
