// Atomic and implicit preferences (Sections 3.1-3.4).
//
// Selection preferences attach a DoiPair to an atomic selection condition
// `R.A <op> value`; join preferences attach a directed degree in [0,1] to a
// join condition `R.A = S.B`. Implicit preferences compose join edges (and
// optionally a final selection edge) along acyclic paths; degrees multiply.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "core/doi.h"
#include "sql/expr.h"
#include "storage/schema.h"

namespace qp::core {

/// \brief An atomic selection condition on one attribute.
///
/// Exact conditions use `op` and `value`. Elastic conditions (numeric
/// "around" preferences) set op = kEq with `value` holding the target; their
/// effective truth range comes from the doi functions' supports.
struct SelectionCondition {
  storage::AttributeRef attr;
  sql::BinaryOp op = sql::BinaryOp::kEq;
  storage::Value value;

  std::string ToString() const;
  bool operator==(const SelectionCondition&) const = default;
};

/// \brief Atomic selection preference <q, doi(q)>.
struct SelectionPreference {
  SelectionCondition condition;
  DoiPair doi;

  /// Degree of criticality c = d0+ + |d0-| (Formula 7), in [0, 2].
  double Criticality() const;

  std::string ToString() const;
  bool operator==(const SelectionPreference&) const = default;
};

/// \brief Atomic (directed) join preference.
///
/// Expresses how much the relation of `from` depends on the relation of
/// `to` (paper Section 3.1: the left part is the relation already in a
/// query; the right may be pulled in).
struct JoinPreference {
  storage::AttributeRef from;
  storage::AttributeRef to;
  double degree = 0.0;  // in [0, 1]

  /// Joins assume failure degree 0, so criticality equals the degree.
  double Criticality() const { return degree; }

  std::string ToString() const;
  bool operator==(const JoinPreference&) const = default;
};

/// \brief An implicit (or atomic) preference: a directed path of join edges
/// optionally terminated by a selection edge (Section 3.2).
///
/// With no joins and a selection, this is an atomic selection preference;
/// with joins and no selection it is an (implicit) join preference.
class ImplicitPreference {
 public:
  ImplicitPreference() = default;

  /// Atomic selection path.
  static ImplicitPreference Selection(SelectionPreference pref);
  /// Atomic join path.
  static ImplicitPreference Join(JoinPreference pref);

  /// Extends this join path with another composable join edge; fails if
  /// this path already ends in a selection or the edge is not composable.
  Result<ImplicitPreference> ExtendWith(const JoinPreference& edge) const;
  /// Terminates this join path with a selection on the last relation.
  Result<ImplicitPreference> ExtendWith(const SelectionPreference& pref) const;

  bool has_selection() const { return has_selection_; }
  const std::vector<JoinPreference>& joins() const { return joins_; }
  const SelectionPreference& selection() const { return selection_; }

  /// Number of edges in the path.
  size_t Length() const { return joins_.size() + (has_selection_ ? 1 : 0); }

  /// The relation the path starts from (the query-side anchor).
  const std::string& AnchorRelation() const;

  /// The relation the path currently ends at (for further composition).
  const std::string& TargetRelation() const;

  /// True if `relation` appears anywhere along the path.
  bool Mentions(const std::string& relation) const;

  /// Product of join degrees along the path.
  double JoinDegreeProduct() const;

  /// The composed doi pair (selection paths only): atomic doi scaled by the
  /// join degree product (Example 2).
  DoiPair ComposedDoi() const;

  /// Degree of criticality of the full path: c_S = prod(d_j) * c_sel for
  /// selection paths, prod(d_j) for join paths. Satisfies c_S <= 2 c_J
  /// (Formula 8).
  double Criticality() const;

  /// The conjunction of atomic conditions, e.g.
  /// "MOVIE.mid=DIRECTED.mid and DIRECTED.did=DIRECTOR.did and
  /// DIRECTOR.name='W. Allen'".
  std::string ConditionString() const;

  std::string ToString() const;

  bool operator==(const ImplicitPreference&) const = default;

 private:
  std::vector<JoinPreference> joins_;
  bool has_selection_ = false;
  SelectionPreference selection_;
};

}  // namespace qp::core
