// PPA — Progressive Personalized Answers (Section 5, Figure 6).
//
// Presence and 1-1 absence preferences become "presence queries" S_i
// (a returned tuple satisfies the preference); 1-n absence preferences
// become "absence queries" A_i in presence form (a returned tuple FAILS the
// preference). Both sets are ordered by increasing estimated selectivity
// using histograms. For each newly seen tuple t, parameterized point queries
// Q_i^S(t) / Q_i^A(t) determine exactly which remaining preferences t
// satisfies, so results are self-explanatory and can be ranked with any
// mixed-combination function. Tuples are emitted progressively as soon as
// their doi meets MEDI, the maximum estimated degree of interest any unseen
// tuple could still achieve.
//
// Planning and execution are split: BuildPlan derives the S/A query sets,
// their selectivity ordering and the prepared index walks once, and
// GenerateWithPlan runs the progressive algorithm over the (immutable,
// shareable) plan. The serving layer caches plans per query/preference-set
// and invalidates them via the profile and stats epochs: a plan embeds
// histogram-derived ordering and pointers into table hash indexes, so it is
// only valid while profile and data stay unchanged.

#pragma once

#include <functional>
#include <memory>

#include "common/cancel.h"
#include "common/status.h"
#include "core/answer.h"
#include "core/ranking.h"
#include "core/rewrite.h"
#include "exec/executor.h"
#include "stats/table_stats.h"

namespace qp::core {

/// Internal representation of a built PPA plan (defined in ppa.cc).
struct PpaPlanRep;

/// \brief Generates progressive personalized answers.
class PpaGenerator {
 public:
  struct Options {
    /// Minimum number of the K preferences a returned tuple must satisfy.
    size_t L = 1;
    /// Ranking function for tuple dois and for MEDI.
    RankingFunction ranking =
        RankingFunction::Make(CombinationStyle::kInflationary);
    /// Invoked for each tuple the moment it is safe to emit (doi >= MEDI).
    std::function<void(const PersonalizedTuple&)> on_emit;
    /// Stop after this many tuples (0 = all). Because PPA emits in final
    /// rank order under the MEDI bound, the first N emitted ARE the top-N —
    /// remaining queries and probes are skipped entirely.
    size_t top_n = 0;
    /// Unified execution options: morsel-driven parallelism for the S/A
    /// queries and for the per-tuple point probes, which are independent
    /// and fan out across a (possibly shared) pool. Emission order — and
    /// hence every MEDI progressiveness guarantee — is identical at every
    /// thread count: probes compute into per-tuple slots and tuples enter
    /// the pending queue serially in base-row order.
    exec::ExecOptions exec;
    /// Optional trace sink. Each S/A query round records one span (with the
    /// executor's plan as children and pref/selectivity/rows/fresh attrs),
    /// the complement scan records one, and a final "first_response" span
    /// carries AnswerStats::first_response_seconds. Everything but the
    /// timings is deterministic across thread counts. Not owned; must not
    /// be shared with a concurrent generation.
    obs::TraceSpan* trace = nullptr;
    /// Optional cooperative cancellation / deadline token (not owned).
    /// Polled at every round boundary — before each S query, each A query
    /// and the complement scan — and inside the executor at morsel
    /// boundaries. When it fires, generation stops and returns the
    /// progressive prefix emitted so far with stats.partial = true and
    /// stats.rounds_run = the cut round; a prefix cut at round r is
    /// byte-identical to the full answer's first tuples at every thread
    /// count (the partial-answer determinism contract). A token whose
    /// forced cut round is set (CancelToken::ForceCutAtRound) cuts at that
    /// exact boundary independent of wall time.
    const common::CancelToken* cancel = nullptr;
    /// \deprecated Alias for exec.num_threads, honored only while
    /// exec.num_threads is left at its default of 1. Kept for one release
    /// and read nowhere but EffectiveExec(); use `exec` instead.
    size_t num_threads = 1;

    /// The options actually applied: `exec` with the deprecated alias
    /// folded in.
    exec::ExecOptions EffectiveExec() const {
      exec::ExecOptions e = exec;
      if (e.num_threads == 1 && num_threads > 1) e.num_threads = num_threads;
      return e;
    }
  };

  /// \brief An immutable, reusable PPA plan: rewritten S/A query sets in
  /// selectivity order, prepared walks and probe conditions, and the
  /// id-extended base query. Cheap to copy (shared representation); safe to
  /// execute concurrently.
  class Plan {
   public:
    Plan() = default;
    bool valid() const { return rep_ != nullptr; }

   private:
    friend class PpaGenerator;
    std::shared_ptr<const PpaPlanRep> rep_;
  };

  /// `stats` provides the selectivity estimates that order the query sets;
  /// it may be null (arbitrary order — exercised by the ordering ablation).
  PpaGenerator(const storage::Database* db, stats::StatsManager* stats)
      : db_(db), stats_(stats), rewriter_(db) {}

  /// Plans PPA for `base` under `preferences`. The base query's first FROM
  /// entry is the target relation and must have a single-column primary key
  /// (the paper's "tuple id").
  Result<Plan> BuildPlan(const sql::SelectQuery& base,
                         const std::vector<SelectedPreference>& preferences)
      const;

  /// Runs the progressive algorithm over a previously built plan.
  Result<PersonalizedAnswer> GenerateWithPlan(const Plan& plan,
                                              const Options& options) const;

  /// BuildPlan + GenerateWithPlan in one shot (the cold path).
  Result<PersonalizedAnswer> Generate(
      const sql::SelectQuery& base,
      const std::vector<SelectedPreference>& preferences,
      const Options& options) const;

 private:
  const storage::Database* db_;
  stats::StatsManager* stats_;
  QueryRewriter rewriter_;
};

}  // namespace qp::core
