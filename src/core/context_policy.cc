#include "core/context_policy.h"

#include <algorithm>

namespace qp::core {

PersonalizeOptions KLPolicy::Derive(const QueryEnvironment& environment,
                                    size_t related_estimate) {
  PersonalizeOptions options;
  size_t k = 0;
  size_t l = 1;
  switch (environment.device) {
    case QueryEnvironment::Device::kDesktop:
      k = 20;
      l = 1;
      break;
    case QueryEnvironment::Device::kMobile:
      k = 10;
      l = 2;
      break;
    case QueryEnvironment::Device::kVoice:
      // A voice answer reads out a handful of items; demand strong matches.
      k = 5;
      l = 3;
      break;
  }
  if (environment.on_the_go) {
    // Less attention available: tighten further.
    l += 1;
  }
  if (related_estimate > 0) {
    k = std::min(k, related_estimate);
  }
  l = std::min(l, std::max<size_t>(k, 1));
  options.k = k;
  options.l = l;
  // Tight time budgets favour progressive delivery; an unconstrained
  // desktop can afford either algorithm, and PPA's explanations are
  // worth having by default.
  options.algorithm = AnswerAlgorithm::kPpa;
  if (environment.time_budget_seconds > 0.0 &&
      environment.time_budget_seconds < 1.0) {
    // No time to browse: only the strongest matches.
    options.l = std::max<size_t>(options.l, std::min<size_t>(k, 2));
  }
  return options;
}

}  // namespace qp::core
