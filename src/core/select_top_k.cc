#include "core/select_top_k.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace qp::core {

namespace {

/// A queue entry: a path plus its ordering priority.
struct PathEntry {
  ImplicitPreference path;
  double criticality = 0.0;  // true criticality
  double priority = 0.0;     // ordering key (c for SPS, c*fc for FakeCrit)
  /// Monotone tiebreaker so ordering is deterministic.
  size_t sequence = 0;
};

struct EntryLess {
  bool operator()(const PathEntry& a, const PathEntry& b) const {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.sequence > b.sequence;  // earlier insertions first
  }
};

using PathQueue = std::priority_queue<PathEntry, std::vector<PathEntry>,
                                      EntryLess>;

void Count(SelectionStats* stats, size_t SelectionStats::* field) {
  if (stats != nullptr) ++(stats->*field);
}

}  // namespace

// ---------------------------------------------------------------------------
// FakeCrit (Figure 5)
// ---------------------------------------------------------------------------

Result<std::vector<SelectedPreference>> PreferenceSelector::SelectFakeCrit(
    const QueryContext& query, const SelectionCriterion& criterion,
    SelectionStats* stats) const {
  std::vector<SelectedPreference> selected;
  PathQueue queue;
  size_t sequence = 0;

  auto push_selection = [&](ImplicitPreference path) {
    PathEntry e;
    e.criticality = path.Criticality();
    e.priority = e.criticality;  // fc of a selection edge is 1
    e.path = std::move(path);
    e.sequence = sequence++;
    Count(stats, &SelectionStats::paths_generated);
    queue.push(std::move(e));
  };
  auto push_join = [&](ImplicitPreference path, const JoinPreference* last) {
    PathEntry e;
    e.criticality = path.Criticality();
    e.priority = e.criticality * graph_->FakeCriticality(last);
    if (criterion.min_criticality > 0.0 &&
        e.priority < criterion.min_criticality) {
      return;  // nothing reachable through it can meet c0
    }
    e.path = std::move(path);
    e.sequence = sequence++;
    Count(stats, &SelectionStats::paths_generated);
    queue.push(std::move(e));
  };

  // Step 1: atomic preferences related to Q.
  for (const auto& rel : query.relations) {
    for (const SelectionPreference* sel : graph_->SelectionEdges(rel)) {
      if (ConflictsWithQuery(*sel, query)) continue;
      push_selection(ImplicitPreference::Selection(*sel));
    }
    for (const JoinPreference* join : graph_->JoinEdges(rel)) {
      if (query.MentionsRelation(join->to.table)) continue;
      push_join(ImplicitPreference::Join(*join), join);
    }
  }

  // Step 2: best-first loop.
  while (!queue.empty()) {
    PathEntry entry = queue.top();
    queue.pop();
    Count(stats, &SelectionStats::paths_examined);

    if (entry.path.has_selection()) {
      if (criterion.min_criticality > 0.0 &&
          entry.criticality < criterion.min_criticality) {
        break;  // priority-ordered: no remaining path can reach c0
      }
      if (criterion.top_k > 0 && selected.size() >= criterion.top_k) break;
      selected.push_back({std::move(entry.path), entry.criticality});
      if (criterion.top_k > 0 && selected.size() >= criterion.top_k) break;
      continue;
    }

    // Join path: expand with composable atomic elements.
    if (criterion.min_criticality > 0.0 &&
        entry.priority < criterion.min_criticality) {
      break;
    }
    Count(stats, &SelectionStats::expansions);
    const std::string& target = entry.path.TargetRelation();
    for (const SelectionPreference* sel : graph_->SelectionEdges(target)) {
      if (ConflictsWithQuery(*sel, query)) continue;
      auto extended = entry.path.ExtendWith(*sel);
      if (extended.ok()) push_selection(std::move(extended).value());
    }
    for (const JoinPreference* join : graph_->JoinEdges(target)) {
      if (entry.path.Mentions(join->to.table)) continue;
      if (query.MentionsRelation(join->to.table)) continue;
      auto extended = entry.path.ExtendWith(*join);
      if (extended.ok()) push_join(std::move(extended).value(), join);
    }
  }
  return selected;
}

// ---------------------------------------------------------------------------
// SPS: best-first on true criticality with the worst-case mcsu bound.
// ---------------------------------------------------------------------------

Result<std::vector<SelectedPreference>> PreferenceSelector::SelectSPS(
    const QueryContext& query, const SelectionCriterion& criterion,
    SelectionStats* stats) const {
  std::vector<SelectedPreference> selected;
  PathQueue selections, joins;
  size_t sequence = 0;

  auto push = [&](ImplicitPreference path) {
    PathEntry e;
    e.criticality = path.Criticality();
    e.priority = e.criticality;
    e.path = std::move(path);
    e.sequence = sequence++;
    Count(stats, &SelectionStats::paths_generated);
    (e.path.has_selection() ? selections : joins).push(std::move(e));
  };

  for (const auto& rel : query.relations) {
    for (const SelectionPreference* sel : graph_->SelectionEdges(rel)) {
      if (ConflictsWithQuery(*sel, query)) continue;
      push(ImplicitPreference::Selection(*sel));
    }
    for (const JoinPreference* join : graph_->JoinEdges(rel)) {
      if (query.MentionsRelation(join->to.table)) continue;
      push(ImplicitPreference::Join(*join));
    }
  }

  while (!selections.empty() || !joins.empty()) {
    const double best_join_c = joins.empty() ? 0.0 : joins.top().criticality;
    const bool emit_selection =
        !selections.empty() &&
        (joins.empty() || selections.top().criticality >= 2.0 * best_join_c);

    if (emit_selection) {
      PathEntry entry = selections.top();
      selections.pop();
      Count(stats, &SelectionStats::paths_examined);
      if (criterion.min_criticality > 0.0 &&
          entry.criticality < criterion.min_criticality) {
        break;
      }
      if (criterion.top_k > 0 && selected.size() >= criterion.top_k) break;
      selected.push_back({std::move(entry.path), entry.criticality});
      if (criterion.top_k > 0 && selected.size() >= criterion.top_k) break;
      continue;
    }

    // Expand the most critical join to examine longer paths.
    PathEntry entry = joins.top();
    joins.pop();
    Count(stats, &SelectionStats::paths_examined);
    if (criterion.min_criticality > 0.0 &&
        2.0 * entry.criticality < criterion.min_criticality) {
      // No selection through this (or any weaker) join can reach c0, and
      // pending selections were already below 2 * best_join_c.
      break;
    }
    Count(stats, &SelectionStats::expansions);
    const std::string& target = entry.path.TargetRelation();
    for (const SelectionPreference* sel : graph_->SelectionEdges(target)) {
      if (ConflictsWithQuery(*sel, query)) continue;
      auto extended = entry.path.ExtendWith(*sel);
      if (extended.ok()) push(std::move(extended).value());
    }
    for (const JoinPreference* join : graph_->JoinEdges(target)) {
      if (entry.path.Mentions(join->to.table)) continue;
      if (query.MentionsRelation(join->to.table)) continue;
      auto extended = entry.path.ExtendWith(*join);
      if (extended.ok()) push(std::move(extended).value());
    }
  }
  return selected;
}

// ---------------------------------------------------------------------------
// Selection by desired interest of results (Section 4.2)
// ---------------------------------------------------------------------------

Result<std::vector<SelectedPreference>>
PreferenceSelector::SelectByResultInterest(const QueryContext& query,
                                           const DoiTargetOptions& options,
                                           SelectionStats* stats) const {
  std::vector<SelectedPreference> selected;
  std::vector<double> satisfaction_degrees;

  // Queue ordered by c * fc, as in FakeCrit. A plain vector keeps the
  // frontier inspectable for the d_worst bound.
  std::vector<PathEntry> frontier;
  size_t sequence = 0;
  auto push = [&](ImplicitPreference path, const JoinPreference* last_join) {
    PathEntry e;
    e.criticality = path.Criticality();
    e.priority = last_join == nullptr
                     ? e.criticality
                     : e.criticality * graph_->FakeCriticality(last_join);
    e.path = std::move(path);
    e.sequence = sequence++;
    Count(stats, &SelectionStats::paths_generated);
    frontier.push_back(std::move(e));
    std::push_heap(frontier.begin(), frontier.end(), EntryLess{});
  };

  // Estimate N: the number of preference paths related to the query.
  double n_estimate = 0.0;
  for (const auto& rel : query.relations) {
    n_estimate += graph_->SelectionEdges(rel).size();
    for (const JoinPreference* join : graph_->JoinEdges(rel)) {
      if (query.MentionsRelation(join->to.table)) continue;
      if (options.use_path_counts) {
        n_estimate += static_cast<double>(graph_->PathCount(join));
      }
    }
    for (const SelectionPreference* sel : graph_->SelectionEdges(rel)) {
      if (ConflictsWithQuery(*sel, query)) continue;
      push(ImplicitPreference::Selection(*sel), nullptr);
    }
    for (const JoinPreference* join : graph_->JoinEdges(rel)) {
      if (query.MentionsRelation(join->to.table)) continue;
      push(ImplicitPreference::Join(*join), join);
    }
  }
  if (!options.use_path_counts) {
    n_estimate = static_cast<double>(graph_->profile().NumPreferences());
  }

  // d_worst over the current frontier: the largest failure magnitude any
  // unseen preference can have (paper: selections contribute |d-|, join
  // paths their join degree).
  auto compute_dworst = [&]() {
    double worst = 0.0;
    for (const auto& e : frontier) {
      if (e.path.has_selection()) {
        worst = std::max(worst, std::fabs(e.path.ComposedDoi().FailureDegree()));
      } else {
        worst = std::max(worst, e.path.JoinDegreeProduct());
      }
    }
    return worst;
  };

  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), EntryLess{});
    PathEntry entry = std::move(frontier.back());
    frontier.pop_back();
    Count(stats, &SelectionStats::paths_examined);

    if (entry.path.has_selection()) {
      satisfaction_degrees.push_back(
          entry.path.ComposedDoi().SatisfactionDegree());
      selected.push_back({std::move(entry.path), entry.criticality});
      if (options.max_preferences > 0 &&
          selected.size() >= options.max_preferences) {
        break;
      }
      // Formula (10): assume every unseen preference fails at d_worst.
      const double d_worst = compute_dworst();
      const double remaining =
          std::max(0.0, n_estimate - static_cast<double>(selected.size()));
      std::vector<double> failures(static_cast<size_t>(remaining), -d_worst);
      const double estimate =
          options.ranking.Rank(satisfaction_degrees, failures);
      if (estimate >= options.target_doi) break;
      continue;
    }

    Count(stats, &SelectionStats::expansions);
    const std::string& target = entry.path.TargetRelation();
    for (const SelectionPreference* sel : graph_->SelectionEdges(target)) {
      if (ConflictsWithQuery(*sel, query)) continue;
      auto extended = entry.path.ExtendWith(*sel);
      if (extended.ok()) push(std::move(extended).value(), nullptr);
    }
    for (const JoinPreference* join : graph_->JoinEdges(target)) {
      if (entry.path.Mentions(join->to.table)) continue;
      if (query.MentionsRelation(join->to.table)) continue;
      auto extended = entry.path.ExtendWith(*join);
      if (extended.ok()) push(std::move(extended).value(), join);
    }
  }
  return selected;
}

}  // namespace qp::core
