// The personalization graph (Section 3.1, Figure 3): a directed extension of
// the database schema graph with relation, attribute and value nodes, where
// selection edges (attribute -> value) and join edges (attribute ->
// attribute) carry the profile's degrees of interest.
//
// The graph also maintains the two derived statistics the selection
// algorithms need (Section 4.1/4.2):
//  - fake criticality fc per join edge: max criticality of the edges that
//    can follow it, join criticalities doubled (cheap upper bound on the
//    criticality of any implicit selection extending the edge);
//  - path count per join edge: how many selection paths the edge expands to
//    (periodically refreshed, used to estimate N in doi-target selection).
//
// Incremental repair: Build is O(profile) validation plus a path-count DFS
// per join edge. When the profile moved by a known delta (the
// UserProfile mutation journal), RepairFrom produces the SAME graph a
// fresh Build would — bit-identical derived statistics — while validating
// only the added preferences and re-running the DFS only for join edges
// whose recorded reach set intersects the delta's affected relations;
// everything else is copied from the previous graph. The reach set of an
// edge is exactly the set of relations whose selection/join neighborhoods
// its derived statistics read, so a disjoint delta provably cannot change
// them.

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/profile.h"
#include "storage/database.h"

namespace qp::core {

/// \brief Traversal view of a profile over a database schema.
///
/// The graph borrows the profile and database; both must outlive it.
class PersonalizationGraph {
 public:
  /// Validates `profile` against `db` and builds the adjacency indexes.
  static Result<PersonalizationGraph> Build(const storage::Database* db,
                                            const UserProfile* profile);

  /// Delta-sized rebuild: given the graph built over the previous version
  /// of this profile and the journal entries that separate the two
  /// (UserProfile::MutationsSince), produces the graph Build(db, profile)
  /// would — identical adjacency order and identical derived statistics —
  /// validating only added/updated preferences and recomputing path counts
  /// only for join edges that can reach a mutated relation. `previous` may
  /// point into a DIFFERENT (older) profile copy; it is only read.
  static Result<PersonalizationGraph> RepairFrom(
      const PersonalizationGraph& previous, const storage::Database* db,
      const UserProfile* profile,
      const std::vector<ProfileMutation>& mutations);

  const storage::Database& db() const { return *db_; }
  const UserProfile& profile() const { return *profile_; }

  /// Selection edges anchored at `relation` (preferences on its attributes).
  const std::vector<const SelectionPreference*>& SelectionEdges(
      const std::string& relation) const;

  /// Join edges leaving `relation`.
  const std::vector<const JoinPreference*>& JoinEdges(
      const std::string& relation) const;

  /// Fake criticality of a join edge (1.0 is the selection-edge value; join
  /// edges get the max-following rule). Asserts the edge belongs to the
  /// graph's profile.
  double FakeCriticality(const JoinPreference* edge) const;

  /// Number of selection paths `edge` expands to (refreshed statistic).
  size_t PathCount(const JoinPreference* edge) const;

  /// Recomputes fake criticalities and path counts. Called by Build; call
  /// again after the underlying profile changes ("periodic updates",
  /// Section 4.2).
  void RefreshDerivedStats();

  /// The relations a join edge's derived statistics depend on (its DFS
  /// footprint), sorted. Empty for edges not in the graph.
  const std::vector<std::string>& Reach(const JoinPreference* edge) const;

  /// Transitive closure of `anchors` under the graph's join edges
  /// (including the anchors themselves), sorted. Over-approximates the
  /// relations preference selection for a query anchored there can touch —
  /// the serving layer keeps a cached selection alive across a profile
  /// delta when this closure is disjoint from the delta's affected
  /// relations.
  std::vector<std::string> ReachableRelations(
      const std::vector<std::string>& anchors) const;

  // --- Formal graph structure (for inspection and tests). ---

  /// Relation nodes: every schema relation.
  size_t NumRelationNodes() const;
  /// Attribute nodes: every attribute of every relation.
  size_t NumAttributeNodes() const;
  /// Value nodes: one per distinct value of interest in the profile.
  size_t NumValueNodes() const;
  /// Selection / join edge counts.
  size_t NumSelectionEdges() const { return profile_->selections().size(); }
  size_t NumJoinEdges() const { return profile_->joins().size(); }

 private:
  PersonalizationGraph() = default;

  /// Re-derives the by-relation adjacency indexes from the profile
  /// vectors (cheap pointer work, O(N log N) for the criticality sort).
  void RebuildAdjacency();

  /// Computes fake criticality, path count, and the reach set of one join
  /// edge (adjacency indexes must be current).
  void ComputeEdgeStats(const JoinPreference* edge);

  size_t CountPaths(const JoinPreference* edge,
                    std::vector<std::string>& visited,
                    std::set<std::string>* reach) const;

  const storage::Database* db_ = nullptr;
  const UserProfile* profile_ = nullptr;

  std::map<std::string, std::vector<const SelectionPreference*>>
      selections_by_relation_;
  std::map<std::string, std::vector<const JoinPreference*>> joins_by_relation_;
  std::map<const JoinPreference*, double> fake_criticality_;
  std::map<const JoinPreference*, size_t> path_count_;
  /// Per-join-edge DFS footprint (see Reach); what RepairFrom keys its
  /// copy-vs-recompute decision on.
  std::map<const JoinPreference*, std::vector<std::string>> reach_;
};

}  // namespace qp::core
