// The personalization graph (Section 3.1, Figure 3): a directed extension of
// the database schema graph with relation, attribute and value nodes, where
// selection edges (attribute -> value) and join edges (attribute ->
// attribute) carry the profile's degrees of interest.
//
// The graph also maintains the two derived statistics the selection
// algorithms need (Section 4.1/4.2):
//  - fake criticality fc per join edge: max criticality of the edges that
//    can follow it, join criticalities doubled (cheap upper bound on the
//    criticality of any implicit selection extending the edge);
//  - path count per join edge: how many selection paths the edge expands to
//    (periodically refreshed, used to estimate N in doi-target selection).

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/profile.h"
#include "storage/database.h"

namespace qp::core {

/// \brief Traversal view of a profile over a database schema.
///
/// The graph borrows the profile and database; both must outlive it.
class PersonalizationGraph {
 public:
  /// Validates `profile` against `db` and builds the adjacency indexes.
  static Result<PersonalizationGraph> Build(const storage::Database* db,
                                            const UserProfile* profile);

  const storage::Database& db() const { return *db_; }
  const UserProfile& profile() const { return *profile_; }

  /// Selection edges anchored at `relation` (preferences on its attributes).
  const std::vector<const SelectionPreference*>& SelectionEdges(
      const std::string& relation) const;

  /// Join edges leaving `relation`.
  const std::vector<const JoinPreference*>& JoinEdges(
      const std::string& relation) const;

  /// Fake criticality of a join edge (1.0 is the selection-edge value; join
  /// edges get the max-following rule). Asserts the edge belongs to the
  /// graph's profile.
  double FakeCriticality(const JoinPreference* edge) const;

  /// Number of selection paths `edge` expands to (refreshed statistic).
  size_t PathCount(const JoinPreference* edge) const;

  /// Recomputes fake criticalities and path counts. Called by Build; call
  /// again after the underlying profile changes ("periodic updates",
  /// Section 4.2).
  void RefreshDerivedStats();

  // --- Formal graph structure (for inspection and tests). ---

  /// Relation nodes: every schema relation.
  size_t NumRelationNodes() const;
  /// Attribute nodes: every attribute of every relation.
  size_t NumAttributeNodes() const;
  /// Value nodes: one per distinct value of interest in the profile.
  size_t NumValueNodes() const;
  /// Selection / join edge counts.
  size_t NumSelectionEdges() const { return profile_->selections().size(); }
  size_t NumJoinEdges() const { return profile_->joins().size(); }

 private:
  PersonalizationGraph() = default;

  size_t CountPaths(const JoinPreference* edge,
                    std::vector<std::string>& visited) const;

  const storage::Database* db_ = nullptr;
  const UserProfile* profile_ = nullptr;

  std::map<std::string, std::vector<const SelectionPreference*>>
      selections_by_relation_;
  std::map<std::string, std::vector<const JoinPreference*>> joins_by_relation_;
  std::map<const JoinPreference*, double> fake_criticality_;
  std::map<const JoinPreference*, size_t> path_count_;
};

}  // namespace qp::core
