#include "core/conflict.h"

#include <cmath>
#include <limits>

namespace qp::core {

using sql::BinaryOp;
using storage::Value;

QueryContext QueryContext::FromQuery(const sql::SelectQuery& query) {
  QueryContext ctx;
  for (const auto& ref : query.from) {
    if (ref.derived == nullptr) ctx.relations.push_back(ref.table);
  }
  for (const auto& conjunct : sql::ConjunctsOf(query.where)) {
    storage::AttributeRef attr;
    BinaryOp op;
    Value value;
    if (conjunct->IsSelectionAtom(&attr, &op, &value)) {
      ctx.atoms.push_back({std::move(attr), op, std::move(value)});
    }
  }
  return ctx;
}

bool QueryContext::MentionsRelation(const std::string& relation) const {
  for (const auto& r : relations) {
    if (r == relation) return true;
  }
  return false;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Numeric interval with open/closed endpoints.
struct Interval {
  double lo = -kInf;
  double hi = kInf;
  bool lo_closed = false;
  bool hi_closed = false;

  bool Empty() const {
    if (lo < hi) return false;
    if (lo > hi) return true;
    return !(lo_closed && hi_closed);
  }

  Interval Intersect(const Interval& other) const {
    Interval out;
    if (lo > other.lo) {
      out.lo = lo;
      out.lo_closed = lo_closed;
    } else if (lo < other.lo) {
      out.lo = other.lo;
      out.lo_closed = other.lo_closed;
    } else {
      out.lo = lo;
      out.lo_closed = lo_closed && other.lo_closed;
    }
    if (hi < other.hi) {
      out.hi = hi;
      out.hi_closed = hi_closed;
    } else if (hi > other.hi) {
      out.hi = other.hi;
      out.hi_closed = other.hi_closed;
    } else {
      out.hi = hi;
      out.hi_closed = hi_closed && other.hi_closed;
    }
    return out;
  }
};

/// Interval of values satisfying `op x` against constant v. Returns false
/// for operators without an interval form (<>).
bool ToInterval(BinaryOp op, double v, Interval* out) {
  switch (op) {
    case BinaryOp::kEq:
      *out = {v, v, true, true};
      return true;
    case BinaryOp::kLt:
      *out = {-kInf, v, false, false};
      return true;
    case BinaryOp::kLe:
      *out = {-kInf, v, false, true};
      return true;
    case BinaryOp::kGt:
      *out = {v, kInf, false, false};
      return true;
    case BinaryOp::kGe:
      *out = {v, kInf, true, false};
      return true;
    case BinaryOp::kNe:
      return false;
  }
  return false;
}

}  // namespace

bool ConditionsContradict(const SelectionCondition& a,
                          const SelectionCondition& b) {
  if (!(a.attr == b.attr)) return false;
  const Value& va = a.value;
  const Value& vb = b.value;

  // String (or mixed) comparisons: only = / <> combinations decide.
  if (!va.is_numeric() || !vb.is_numeric()) {
    if (a.op == BinaryOp::kEq && b.op == BinaryOp::kEq) return va != vb;
    if (a.op == BinaryOp::kEq && b.op == BinaryOp::kNe) return va == vb;
    if (a.op == BinaryOp::kNe && b.op == BinaryOp::kEq) return va == vb;
    return false;
  }

  // Numeric: intersect intervals; <> only contradicts an equality on the
  // same point.
  const double xa = va.ToNumeric();
  const double xb = vb.ToNumeric();
  if (a.op == BinaryOp::kNe || b.op == BinaryOp::kNe) {
    if (a.op == BinaryOp::kNe && b.op == BinaryOp::kEq) return xa == xb;
    if (a.op == BinaryOp::kEq && b.op == BinaryOp::kNe) return xa == xb;
    return false;
  }
  Interval ia, ib;
  if (!ToInterval(a.op, xa, &ia) || !ToInterval(b.op, xb, &ib)) return false;
  return ia.Intersect(ib).Empty();
}

bool ConflictsWithQuery(const SelectionPreference& pref,
                        const QueryContext& ctx) {
  // Build the satisfaction condition. Elastic presence preferences satisfy
  // within the satisfaction branch's support range.
  const bool satisfied_when_true = pref.doi.SatisfiedWhenTrue();
  const DoiFunction& branch =
      satisfied_when_true ? pref.doi.d_true() : pref.doi.d_false();

  std::vector<SelectionCondition> satisfaction;
  if (satisfied_when_true) {
    if (branch.is_elastic()) {
      satisfaction.push_back({pref.condition.attr, sql::BinaryOp::kGe,
                              Value(branch.support_lo())});
      satisfaction.push_back({pref.condition.attr, sql::BinaryOp::kLe,
                              Value(branch.support_hi())});
    } else {
      satisfaction.push_back(pref.condition);
    }
  } else {
    // Satisfaction is the *failure* of q. The negation of an interval is
    // not an interval, so elastic absence preferences are conservatively
    // conflict-free; exact ones negate the operator.
    if (pref.doi.d_true().is_elastic()) return false;
    SelectionCondition negated = pref.condition;
    negated.op = sql::NegateOp(pref.condition.op);
    satisfaction.push_back(std::move(negated));
  }

  for (const auto& atom : ctx.atoms) {
    for (const auto& cond : satisfaction) {
      if (ConditionsContradict(cond, atom)) return true;
    }
  }
  return false;
}

}  // namespace qp::core
