// Personalized answers: ranked tuples annotated with the preferences they
// satisfy and fail (the paper's "self-explanatory" requirement, Section 5).

#pragma once

#include <string>
#include <vector>

#include "core/select_top_k.h"
#include "exec/row_set.h"

namespace qp::core {

/// How one preference turned out for one tuple.
struct PreferenceOutcome {
  /// Index into the answer's `preferences` vector.
  size_t pref_index = 0;
  /// The tuple's degree for that preference (elastic-aware): >= 0 when
  /// satisfied, <= 0 when failed.
  double degree = 0.0;

  bool operator==(const PreferenceOutcome&) const = default;
};

/// \brief One tuple of a personalized answer.
struct PersonalizedTuple {
  /// The base query's projected values.
  storage::Row values;
  /// Overall degree of interest (ranking-function output).
  double doi = 0.0;
  /// Outcomes per preference. SPA answers leave these empty (the paper
  /// notes SPA is not self-explanatory); PPA fills both.
  std::vector<PreferenceOutcome> satisfied;
  std::vector<PreferenceOutcome> failed;

  bool operator==(const PersonalizedTuple&) const = default;
};

/// Wall-clock and work statistics for one personalization run.
struct AnswerStats {
  double selection_seconds = 0.0;
  double generation_seconds = 0.0;
  /// Seconds until the first tuple was emitted (PPA; equals
  /// generation_seconds for SPA, which emits only at the end).
  double first_response_seconds = 0.0;
  size_t queries_executed = 0;
  size_t tuples_returned = 0;
  // Resource accounting from the generation executor's ExecStats. Like
  // queries_executed these are deterministic — identical at every thread
  // count — so the query log can include them in its deterministic render.
  size_t rows_scanned = 0;
  size_t rows_joined = 0;
  /// Access-path choices per base source (ExecStats::paths_*). Logical —
  /// made from query shape and estimates, never from registered indexes —
  /// so deterministic and part of SameAnswerPayload.
  size_t paths_scan = 0;
  size_t paths_probe = 0;
  size_t paths_range = 0;
  /// Rows materialized into operator outputs (ExecStats::rows_output).
  size_t rows_materialized = 0;
  /// Summed task wall time across workers (timing-derived; excluded from
  /// every determinism comparison).
  double thread_seconds = 0.0;
  /// Rows *physically* examined: executor access paths plus PPA's prepared
  /// probe walks. Unlike rows_scanned (the logical plan cost, identical
  /// with indexes on or off), this is where secondary indexes show up —
  /// an indexed probe examines its matches, a scan fallback examines the
  /// relation. Deterministic at every thread count for a given index set,
  /// but excluded from SameAnswerPayload because it measures the physical
  /// backing, not the answer.
  size_t rows_examined = 0;
  /// True when a deadline/cancellation cut PPA off between rounds: the
  /// answer holds the progressive prefix emitted so far instead of the full
  /// result. Always false for SPA (which has no prefix to return) and for
  /// uncancelled runs. Given the same cut round, a partial answer is
  /// byte-identical at every thread count.
  bool partial = false;
  /// S/A query rounds (plus the complement scan) PPA actually completed.
  /// For a partial answer this IS the cut round: exactly `rounds_run`
  /// rounds ran before the cut, so the tuples equal the full answer's
  /// prefix as of that round boundary. Deterministic; 0 for SPA.
  size_t rounds_run = 0;
};

/// \brief A complete personalized answer.
struct PersonalizedAnswer {
  /// Output column names (the base query's select list).
  std::vector<exec::OutputColumn> columns;
  /// Tuples in decreasing doi.
  std::vector<PersonalizedTuple> tuples;
  /// The top-K preferences that shaped the answer.
  std::vector<SelectedPreference> preferences;
  AnswerStats stats;

  /// Renders tuple `i` with its doi and (when available) the satisfied /
  /// failed preference conditions — the self-explanation of Section 5.
  std::string ExplainTuple(size_t i) const;

  /// Renders the whole answer as a table (capped at `max_rows`).
  std::string ToString(size_t max_rows = 20) const;
};

/// True when two answers carry the same payload: columns, tuples (values,
/// dois, explanations, order), selected preferences, and the deterministic
/// work counters (queries_executed, tuples_returned). Wall-clock timing
/// fields are excluded — they are the only thing allowed to differ between
/// a warm serve-cache hit and a fresh cold run.
bool SameAnswerPayload(const PersonalizedAnswer& a, const PersonalizedAnswer& b);

}  // namespace qp::core
