// Qualitative descriptors (Section 2): "an application may use qualitative
// descriptors for preferences and desired results defined in terms of
// intervals of degrees of interest. E.g., a 'best' descriptor could map to
// degrees between 0.9 and 1; then a user could ask for 'best' answers."
//
// A DescriptorRegistry names doi intervals; the Personalizer accepts a
// descriptor in place of a numeric target and filters/labels answers with
// it.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace qp::core {

/// \brief A closed interval of degrees of interest.
struct DoiInterval {
  double lo = 0.0;
  double hi = 1.0;

  bool Contains(double doi) const { return doi >= lo && doi <= hi; }
  bool operator==(const DoiInterval&) const = default;
};

/// \brief Named doi intervals ("best" -> [0.9, 1]).
class DescriptorRegistry {
 public:
  /// The built-in vocabulary:
  ///   best [0.85, 1], good [0.6, 1], fair [0.3, 1], weak [0, 0.3),
  ///   unwanted [-1, 0).
  static DescriptorRegistry Default();

  /// Defines (or redefines) a descriptor. Fails unless -1 <= lo <= hi <= 1.
  Status Define(const std::string& name, double lo, double hi);

  /// Interval for `name` (case-insensitive); NotFound if absent.
  Result<DoiInterval> Lookup(const std::string& name) const;

  /// The most specific (narrowest) descriptor containing `doi`, or "" if
  /// none does.
  std::string Describe(double doi) const;

  /// All descriptor names, alphabetically.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, DoiInterval> intervals_;
};

}  // namespace qp::core
