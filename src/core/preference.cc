#include "core/preference.h"

#include <cmath>

#include "common/string_util.h"

namespace qp::core {

std::string SelectionCondition::ToString() const {
  std::string v = value.is_string() ? "'" + value.as_string() + "'"
                                    : value.ToString();
  return attr.ToString() + sql::BinaryOpName(op) + v;
}

double SelectionPreference::Criticality() const {
  return doi.SatisfactionDegree() + std::fabs(doi.FailureDegree());
}

std::string SelectionPreference::ToString() const {
  return "doi(" + condition.ToString() + ") = " + doi.ToString();
}

std::string JoinPreference::ToString() const {
  return "doi(" + from.ToString() + "=" + to.ToString() + ") = (" +
         FormatDouble(degree) + ")";
}

ImplicitPreference ImplicitPreference::Selection(SelectionPreference pref) {
  ImplicitPreference p;
  p.has_selection_ = true;
  p.selection_ = std::move(pref);
  return p;
}

ImplicitPreference ImplicitPreference::Join(JoinPreference pref) {
  ImplicitPreference p;
  p.joins_.push_back(std::move(pref));
  return p;
}

Result<ImplicitPreference> ImplicitPreference::ExtendWith(
    const JoinPreference& edge) const {
  if (has_selection_) {
    return Status::InvalidArgument(
        "cannot extend a selection path with a join edge");
  }
  if (!joins_.empty() && joins_.back().to.table != edge.from.table) {
    return Status::InvalidArgument("join edge from '" + edge.from.ToString() +
                                   "' is not composable with path ending at '" +
                                   joins_.back().to.table + "'");
  }
  if (Mentions(edge.to.table)) {
    return Status::InvalidArgument("cycle: relation '" + edge.to.table +
                                   "' already on the path");
  }
  ImplicitPreference out = *this;
  out.joins_.push_back(edge);
  return out;
}

Result<ImplicitPreference> ImplicitPreference::ExtendWith(
    const SelectionPreference& pref) const {
  if (has_selection_) {
    return Status::InvalidArgument("path already ends in a selection");
  }
  if (!joins_.empty() &&
      joins_.back().to.table != pref.condition.attr.table) {
    return Status::InvalidArgument(
        "selection on '" + pref.condition.attr.ToString() +
        "' is not composable with path ending at '" + joins_.back().to.table +
        "'");
  }
  ImplicitPreference out = *this;
  out.has_selection_ = true;
  out.selection_ = pref;
  return out;
}

const std::string& ImplicitPreference::AnchorRelation() const {
  if (!joins_.empty()) return joins_.front().from.table;
  return selection_.condition.attr.table;
}

const std::string& ImplicitPreference::TargetRelation() const {
  if (has_selection_) return selection_.condition.attr.table;
  return joins_.back().to.table;
}

bool ImplicitPreference::Mentions(const std::string& relation) const {
  for (const auto& j : joins_) {
    if (j.from.table == relation || j.to.table == relation) return true;
  }
  if (has_selection_ && selection_.condition.attr.table == relation) {
    return true;
  }
  return false;
}

double ImplicitPreference::JoinDegreeProduct() const {
  double product = 1.0;
  for (const auto& j : joins_) product *= j.degree;
  return product;
}

DoiPair ImplicitPreference::ComposedDoi() const {
  return selection_.doi.Scaled(JoinDegreeProduct());
}

double ImplicitPreference::Criticality() const {
  const double joins = JoinDegreeProduct();
  if (!has_selection_) return joins;
  return joins * selection_.Criticality();
}

std::string ImplicitPreference::ConditionString() const {
  std::vector<std::string> parts;
  for (const auto& j : joins_) {
    parts.push_back(j.from.ToString() + "=" + j.to.ToString());
  }
  if (has_selection_) parts.push_back(selection_.condition.ToString());
  return ::qp::Join(parts, " and ");
}

std::string ImplicitPreference::ToString() const {
  if (has_selection_) {
    return "doi(" + ConditionString() + ") = " + ComposedDoi().ToString();
  }
  return "doi(" + ConditionString() + ") = (" +
         FormatDouble(JoinDegreeProduct()) + ")";
}

}  // namespace qp::core
