#include "core/graph.h"

#include <algorithm>
#include <set>

namespace qp::core {

namespace {

/// The per-preference slice of UserProfile::Validate — what RepairFrom runs
/// on just the preferences a delta introduced.
Status ValidateSelectionPref(const storage::Database& db,
                             const SelectionPreference& pref) {
  QP_RETURN_IF_ERROR(db.ValidateAttribute(pref.condition.attr));
  if (pref.doi.d_true().is_elastic() || pref.doi.d_false().is_elastic()) {
    QP_ASSIGN_OR_RETURN(storage::DataType type,
                        db.AttributeType(pref.condition.attr));
    if (type != storage::DataType::kInt &&
        type != storage::DataType::kDouble) {
      return Status::InvalidArgument(
          "elastic preference on non-numeric attribute " +
          pref.condition.attr.ToString());
    }
  }
  return Status::OK();
}

}  // namespace

Result<PersonalizationGraph> PersonalizationGraph::Build(
    const storage::Database* db, const UserProfile* profile) {
  QP_RETURN_IF_ERROR(profile->Validate(*db));
  PersonalizationGraph g;
  g.db_ = db;
  g.profile_ = profile;
  g.RefreshDerivedStats();
  return g;
}

Result<PersonalizationGraph> PersonalizationGraph::RepairFrom(
    const PersonalizationGraph& previous, const storage::Database* db,
    const UserProfile* profile,
    const std::vector<ProfileMutation>& mutations) {
  // Validate only what the delta introduced; everything already in
  // `previous` was validated when that graph was built. A preference added
  // and removed again within the same delta is simply absent below.
  std::set<std::string> affected;
  for (const ProfileMutation& m : mutations) {
    for (const std::string& rel : m.AffectedRelations()) affected.insert(rel);
    switch (m.kind) {
      case ProfileMutationKind::kAddSelection:
      case ProfileMutationKind::kUpdateSelectionDoi:
        for (const SelectionPreference& p : profile->selections()) {
          if (p.condition == m.condition) {
            QP_RETURN_IF_ERROR(ValidateSelectionPref(*db, p));
            break;
          }
        }
        break;
      case ProfileMutationKind::kAddJoin:
        QP_RETURN_IF_ERROR(db->ValidateAttribute(m.join_from));
        QP_RETURN_IF_ERROR(db->ValidateAttribute(m.join_to));
        break;
      case ProfileMutationKind::kRemoveSelection:
      case ProfileMutationKind::kRemoveJoin:
      case ProfileMutationKind::kSetRanking:
        break;
    }
  }

  PersonalizationGraph g;
  g.db_ = db;
  g.profile_ = profile;
  g.RebuildAdjacency();

  // Join edges of the previous graph by identity (from, to) — the pointer
  // keys are into the OLD profile copy and mean nothing here.
  std::map<std::pair<std::string, std::string>, const JoinPreference*>
      prev_edges;
  for (const JoinPreference& j : previous.profile_->joins()) {
    prev_edges[{j.from.ToString(), j.to.ToString()}] = &j;
  }

  for (const JoinPreference& join : profile->joins()) {
    const JoinPreference* prev = nullptr;
    if (auto it = prev_edges.find({join.from.ToString(), join.to.ToString()});
        it != prev_edges.end()) {
      prev = it->second;
    }
    bool copyable = prev != nullptr;
    if (copyable) {
      auto reach_it = previous.reach_.find(prev);
      if (reach_it == previous.reach_.end()) {
        copyable = false;
      } else {
        // The edge's statistics read only the neighborhoods of its reach
        // set; a delta disjoint from it cannot have changed them.
        for (const std::string& rel : reach_it->second) {
          if (affected.count(rel) > 0) {
            copyable = false;
            break;
          }
        }
      }
    }
    if (copyable) {
      g.fake_criticality_[&join] = previous.fake_criticality_.at(prev);
      g.path_count_[&join] = previous.path_count_.at(prev);
      g.reach_[&join] = previous.reach_.at(prev);
    } else {
      g.ComputeEdgeStats(&join);
    }
  }
  return g;
}

const std::vector<const SelectionPreference*>&
PersonalizationGraph::SelectionEdges(const std::string& relation) const {
  static const std::vector<const SelectionPreference*> kEmpty;
  auto it = selections_by_relation_.find(relation);
  return it == selections_by_relation_.end() ? kEmpty : it->second;
}

const std::vector<const JoinPreference*>& PersonalizationGraph::JoinEdges(
    const std::string& relation) const {
  static const std::vector<const JoinPreference*> kEmpty;
  auto it = joins_by_relation_.find(relation);
  return it == joins_by_relation_.end() ? kEmpty : it->second;
}

double PersonalizationGraph::FakeCriticality(const JoinPreference* edge) const {
  auto it = fake_criticality_.find(edge);
  return it == fake_criticality_.end() ? 0.0 : it->second;
}

size_t PersonalizationGraph::PathCount(const JoinPreference* edge) const {
  auto it = path_count_.find(edge);
  return it == path_count_.end() ? 0 : it->second;
}

void PersonalizationGraph::RefreshDerivedStats() {
  RebuildAdjacency();
  fake_criticality_.clear();
  path_count_.clear();
  reach_.clear();
  for (const auto& join : profile_->joins()) {
    ComputeEdgeStats(&join);
  }
}

void PersonalizationGraph::RebuildAdjacency() {
  // Rebuild the adjacency indexes (preference vectors may have grown or
  // reallocated), kept in decreasing criticality so expansion naturally
  // enumerates candidates best-first (FakeCrit step 2.3).
  selections_by_relation_.clear();
  joins_by_relation_.clear();
  for (const auto& p : profile_->selections()) {
    selections_by_relation_[p.condition.attr.table].push_back(&p);
  }
  for (const auto& p : profile_->joins()) {
    joins_by_relation_[p.from.table].push_back(&p);
  }
  for (auto& [rel, edges] : selections_by_relation_) {
    std::sort(edges.begin(), edges.end(),
              [](const SelectionPreference* a, const SelectionPreference* b) {
                return a->Criticality() > b->Criticality();
              });
  }
  for (auto& [rel, edges] : joins_by_relation_) {
    std::sort(edges.begin(), edges.end(),
              [](const JoinPreference* a, const JoinPreference* b) {
                return a->Criticality() > b->Criticality();
              });
  }
}

void PersonalizationGraph::ComputeEdgeStats(const JoinPreference* join) {
  // fc = max criticality among edges following this one; following joins
  // count double (an atomic selection has criticality at most 2, so
  // 2 * c_join bounds any selection path through that join; Section 4.1).
  double fc = 0.0;
  const std::string& target = join->to.table;
  for (const SelectionPreference* sel : SelectionEdges(target)) {
    fc = std::max(fc, sel->Criticality());
  }
  for (const JoinPreference* next : JoinEdges(target)) {
    if (next == join) continue;
    fc = std::max(fc, 2.0 * next->Criticality());
  }
  fake_criticality_[join] = fc;

  std::vector<std::string> visited = {join->from.table, join->to.table};
  std::set<std::string> reach = {target};
  path_count_[join] = CountPaths(join, visited, &reach);
  reach_[join] = std::vector<std::string>(reach.begin(), reach.end());
}

size_t PersonalizationGraph::CountPaths(const JoinPreference* edge,
                                        std::vector<std::string>& visited,
                                        std::set<std::string>* reach) const {
  const std::string& target = edge->to.table;
  size_t count = SelectionEdges(target).size();
  for (const JoinPreference* next : JoinEdges(target)) {
    if (std::find(visited.begin(), visited.end(), next->to.table) !=
        visited.end()) {
      continue;
    }
    if (reach != nullptr) reach->insert(next->to.table);
    visited.push_back(next->to.table);
    count += CountPaths(next, visited, reach);
    visited.pop_back();
  }
  return count;
}

const std::vector<std::string>& PersonalizationGraph::Reach(
    const JoinPreference* edge) const {
  static const std::vector<std::string> kEmpty;
  auto it = reach_.find(edge);
  return it == reach_.end() ? kEmpty : it->second;
}

std::vector<std::string> PersonalizationGraph::ReachableRelations(
    const std::vector<std::string>& anchors) const {
  std::set<std::string> closure(anchors.begin(), anchors.end());
  std::vector<std::string> frontier(anchors.begin(), anchors.end());
  while (!frontier.empty()) {
    const std::string rel = std::move(frontier.back());
    frontier.pop_back();
    for (const JoinPreference* join : JoinEdges(rel)) {
      if (closure.insert(join->to.table).second) {
        frontier.push_back(join->to.table);
      }
    }
  }
  return std::vector<std::string>(closure.begin(), closure.end());
}

size_t PersonalizationGraph::NumRelationNodes() const {
  return db_->TableNames().size();
}

size_t PersonalizationGraph::NumAttributeNodes() const {
  size_t count = 0;
  for (const auto& name : db_->TableNames()) {
    count += (*db_->GetTable(name))->schema().num_columns();
  }
  return count;
}

size_t PersonalizationGraph::NumValueNodes() const {
  std::set<std::pair<std::string, std::string>> values;
  for (const auto& p : profile_->selections()) {
    values.emplace(p.condition.attr.ToString(), p.condition.value.ToString());
  }
  return values.size();
}

}  // namespace qp::core
