#include "core/graph.h"

#include <algorithm>
#include <set>

namespace qp::core {

Result<PersonalizationGraph> PersonalizationGraph::Build(
    const storage::Database* db, const UserProfile* profile) {
  QP_RETURN_IF_ERROR(profile->Validate(*db));
  PersonalizationGraph g;
  g.db_ = db;
  g.profile_ = profile;
  g.RefreshDerivedStats();
  return g;
}

const std::vector<const SelectionPreference*>&
PersonalizationGraph::SelectionEdges(const std::string& relation) const {
  static const std::vector<const SelectionPreference*> kEmpty;
  auto it = selections_by_relation_.find(relation);
  return it == selections_by_relation_.end() ? kEmpty : it->second;
}

const std::vector<const JoinPreference*>& PersonalizationGraph::JoinEdges(
    const std::string& relation) const {
  static const std::vector<const JoinPreference*> kEmpty;
  auto it = joins_by_relation_.find(relation);
  return it == joins_by_relation_.end() ? kEmpty : it->second;
}

double PersonalizationGraph::FakeCriticality(const JoinPreference* edge) const {
  auto it = fake_criticality_.find(edge);
  return it == fake_criticality_.end() ? 0.0 : it->second;
}

size_t PersonalizationGraph::PathCount(const JoinPreference* edge) const {
  auto it = path_count_.find(edge);
  return it == path_count_.end() ? 0 : it->second;
}

void PersonalizationGraph::RefreshDerivedStats() {
  // Rebuild the adjacency indexes (preference vectors may have grown or
  // reallocated), kept in decreasing criticality so expansion naturally
  // enumerates candidates best-first (FakeCrit step 2.3).
  selections_by_relation_.clear();
  joins_by_relation_.clear();
  for (const auto& p : profile_->selections()) {
    selections_by_relation_[p.condition.attr.table].push_back(&p);
  }
  for (const auto& p : profile_->joins()) {
    joins_by_relation_[p.from.table].push_back(&p);
  }
  for (auto& [rel, edges] : selections_by_relation_) {
    std::sort(edges.begin(), edges.end(),
              [](const SelectionPreference* a, const SelectionPreference* b) {
                return a->Criticality() > b->Criticality();
              });
  }
  for (auto& [rel, edges] : joins_by_relation_) {
    std::sort(edges.begin(), edges.end(),
              [](const JoinPreference* a, const JoinPreference* b) {
                return a->Criticality() > b->Criticality();
              });
  }

  fake_criticality_.clear();
  path_count_.clear();
  for (const auto& join : profile_->joins()) {
    // fc = max criticality among edges following this one; following joins
    // count double (an atomic selection has criticality at most 2, so
    // 2 * c_join bounds any selection path through that join; Section 4.1).
    double fc = 0.0;
    const std::string& target = join.to.table;
    for (const SelectionPreference* sel : SelectionEdges(target)) {
      fc = std::max(fc, sel->Criticality());
    }
    for (const JoinPreference* next : JoinEdges(target)) {
      if (next == &join) continue;
      fc = std::max(fc, 2.0 * next->Criticality());
    }
    fake_criticality_[&join] = fc;

    std::vector<std::string> visited = {join.from.table, join.to.table};
    path_count_[&join] = CountPaths(&join, visited);
  }
}

size_t PersonalizationGraph::CountPaths(
    const JoinPreference* edge, std::vector<std::string>& visited) const {
  const std::string& target = edge->to.table;
  size_t count = SelectionEdges(target).size();
  for (const JoinPreference* next : JoinEdges(target)) {
    if (std::find(visited.begin(), visited.end(), next->to.table) !=
        visited.end()) {
      continue;
    }
    visited.push_back(next->to.table);
    count += CountPaths(next, visited);
    visited.pop_back();
  }
  return count;
}

size_t PersonalizationGraph::NumRelationNodes() const {
  return db_->TableNames().size();
}

size_t PersonalizationGraph::NumAttributeNodes() const {
  size_t count = 0;
  for (const auto& name : db_->TableNames()) {
    count += (*db_->GetTable(name))->schema().num_columns();
  }
  return count;
}

size_t PersonalizationGraph::NumValueNodes() const {
  std::set<std::pair<std::string, std::string>> values;
  for (const auto& p : profile_->selections()) {
    values.emplace(p.condition.attr.ToString(), p.condition.value.ToString());
  }
  return values.size();
}

}  // namespace qp::core
