// Degrees of interest (Section 3.1 of the paper).
//
// An atomic selection preference <q, doi(q)> carries doi(q) = (dT(u), dF(u)):
// dT is the user's interest in the *presence* of values u satisfying q, dF
// the interest in their *absence*. Each of dT/dF is a DoiFunction — constant
// for exact (categorical) preferences, elastic over a numeric interval for
// fuzzy ones ("duration around 2h"). Elastic shapes follow Figure 1:
// triangular and trapezoidal, of a single sign.

#pragma once

#include <string>

#include "common/status.h"
#include "storage/value.h"

namespace qp::core {

/// Shape of a doi function.
enum class DoiShape {
  kConstant,
  kTriangular,
  kTrapezoidal,
};

/// \brief One degree-of-interest function d(u) in [-1, 1].
///
/// A DoiFunction has a single sign: its characteristic degree `d` (the
/// subscript in the paper's e(d) notation) is the extreme value it attains;
/// elastic forms interpolate between 0 (outside the support) and d.
class DoiFunction {
 public:
  /// Zero function (indifference).
  DoiFunction() = default;

  /// Constant degree (exact preferences). d in [-1, 1].
  static Result<DoiFunction> Constant(double d);

  /// Triangular elastic function: |d| peaks at `center`, linearly decaying
  /// to 0 at center +/- half_width (Figure 1(a)).
  static Result<DoiFunction> Triangular(double d, double center,
                                        double half_width);

  /// Trapezoidal elastic function: full degree d on [core_lo, core_hi],
  /// linear shoulders down to 0 at support_lo / support_hi.
  static Result<DoiFunction> Trapezoidal(double d, double support_lo,
                                         double core_lo, double core_hi,
                                         double support_hi);

  DoiShape shape() const { return shape_; }
  bool is_elastic() const { return shape_ != DoiShape::kConstant; }
  bool is_zero() const { return degree_ == 0.0; }

  /// The characteristic (extreme) degree d.
  double degree() const { return degree_; }

  /// Evaluates d(u). For constants this is `degree()` everywhere; for
  /// elastic functions it is 0 outside [support_lo, support_hi].
  double Eval(double u) const;

  /// Evaluates over a Value: numeric values use Eval(double); non-numeric
  /// values return the constant degree (exact match semantics handled by
  /// the enclosing condition).
  double Eval(const storage::Value& v) const;

  /// Interval where the function is non-zero (elastic only; constants
  /// return (-inf, +inf) conceptually, reported as lo > hi sentinel).
  double support_lo() const { return support_lo_; }
  double support_hi() const { return support_hi_; }
  double core_lo() const { return core_lo_; }
  double core_hi() const { return core_hi_; }

  /// Renders "0.7", "e(0.7)[center=120,w=30]" or the trapezoid form.
  std::string ToString() const;

  bool operator==(const DoiFunction&) const = default;

 private:
  DoiShape shape_ = DoiShape::kConstant;
  double degree_ = 0.0;
  double support_lo_ = 0.0, support_hi_ = 0.0;
  double core_lo_ = 0.0, core_hi_ = 0.0;
};

/// \brief The pair doi(q) = (dT, dF) with the validity condition
/// dT(u) * dF(u) <= 0 for all u ("normal users", Section 3.1).
class DoiPair {
 public:
  DoiPair() = default;

  /// Builds a pair; fails if the sign condition is violated.
  static Result<DoiPair> Make(DoiFunction d_true, DoiFunction d_false);

  /// Shorthand for constant pairs (exact preferences).
  static Result<DoiPair> Exact(double d_true, double d_false);

  const DoiFunction& d_true() const { return d_true_; }
  const DoiFunction& d_false() const { return d_false_; }

  /// d0+ = max_u max(dT(u), dF(u)): the degree of interest in the
  /// preference's satisfaction (always >= 0 under the sign condition).
  double SatisfactionDegree() const;

  /// d0- = min_u min(dT(u), dF(u)): the degree of interest in the
  /// preference's failure (always <= 0).
  double FailureDegree() const;

  /// True when the satisfaction event is q evaluating to TRUE (presence
  /// semantics); false when satisfaction means q is FALSE (absence).
  bool SatisfiedWhenTrue() const;

  /// True if both components are zero (such preferences are not stored).
  bool IsIndifferent() const {
    return d_true_.is_zero() && d_false_.is_zero();
  }

  /// Scales both components by `factor` in [0, 1] (implicit-preference
  /// composition, Section 3.2).
  DoiPair Scaled(double factor) const;

  std::string ToString() const;

  bool operator==(const DoiPair&) const = default;

 private:
  DoiFunction d_true_, d_false_;
};

}  // namespace qp::core
