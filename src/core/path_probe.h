// Prepared execution of PPA's parameterized point queries Q_i^S(t) /
// Q_i^A(t). A probe asks: does the base-query tuple with id t reach a row
// making preference P's condition TRUE, and at what degree?
//
// Executing each probe as a fresh SQL query pays planning overhead per
// tuple, and PPA issues |tuples| x K of them. Probes are therefore prepared
// once per preference: the anchor lookup and every join hop bind to the
// catalog's hash-index snapshots on their join columns (falling back to a
// per-lookup scan producing the identical matches when no index is
// registered), and the final condition compiles to a direct comparison or
// an elastic-support test. Preferences sharing the same join
// path (e.g. every director preference walks MOVIE -> DIRECTED -> DIRECTOR)
// also share the walk itself through PathWalk, the way the paper's union
// query Q_i(t) shares one scan across its branches. This mirrors what a
// production engine does with prepared parameterized statements, and is
// semantically identical to executing the rewriter's satisfaction/violation
// query with `pk = t` appended (asserted by the probe tests).

#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "core/preference.h"
#include "index/hash_index.h"
#include "storage/database.h"

namespace qp::core {

/// \brief The join-path part of a probe: anchor lookup plus a chain of
/// index hops. Returns the reachable rows of the path's target relation.
class PathWalk {
 public:
  PathWalk() = default;

  /// Prepares a walk for `pref`'s join path. The anchor relation needs a
  /// single-column primary key.
  static Result<PathWalk> Prepare(const storage::Database* db,
                                  const ImplicitPreference& pref);

  /// Rows of the target relation reachable from the anchor tuple with
  /// primary-key value `anchor_key` (the anchor rows themselves for an
  /// empty path), in ascending row order per step — identical whether a
  /// hop is index-backed or scan-backed. Returns the number of rows
  /// physically examined (matches on indexed hops, the whole relation on
  /// scan fallbacks) — PPA's probe_rows_examined accounting. Thread-safe:
  /// index snapshots are bound at Prepare time, so concurrent probes over
  /// one walk read shared immutable state only — PPA fans point probes out
  /// across a pool on exactly this path.
  size_t Frontier(const storage::Value& anchor_key,
                  std::vector<const storage::Row*>* out) const;

  /// Key identifying walks that traverse the same join-edge sequence.
  const std::string& signature() const { return signature_; }

 private:
  /// One relation lookup: the catalog's hash snapshot on the join column
  /// when registered (kept alive by the shared_ptr even if the catalog
  /// rebuilds), else a per-lookup scan over the relation.
  struct Binding {
    const storage::Table* table = nullptr;
    size_t col = 0;
    std::shared_ptr<const index::HashIndex> snapshot;
  };

  struct Hop {
    /// Column index of the join key in the *previous* relation's row.
    size_t from_col = 0;
    Binding to;
  };

  /// Appends the rows of `b.table` whose `b.col` equals `key` (ascending
  /// row order); returns rows examined.
  static size_t Matches(const Binding& b, const storage::Value& key,
                        std::vector<const storage::Row*>* out);

  Binding anchor_;
  std::vector<Hop> hops_;
  std::string signature_;
};

/// \brief The condition part of a probe: evaluates the preference's
/// truth-side condition and degree over a walk frontier.
class PathCondition {
 public:
  PathCondition() = default;

  static Result<PathCondition> Prepare(const storage::Database* db,
                                       const ImplicitPreference& pref);

  /// Returns the tuple's truth-side degree j * dT(u) — maximized over join
  /// fan-out — when some frontier row makes the condition TRUE, else
  /// std::nullopt.
  std::optional<double> TruthDegree(
      const std::vector<const storage::Row*>& frontier) const;

 private:
  size_t condition_col_ = 0;
  sql::BinaryOp op_ = sql::BinaryOp::kEq;
  storage::Value value_;
  /// Elastic truth range (used instead of op/value when set).
  bool elastic_ = false;
  double support_lo_ = 0.0, support_hi_ = 0.0;
  DoiFunction d_true_;
  double join_product_ = 1.0;
};

/// \brief A standalone compiled probe (walk + condition).
class PathProbe {
 public:
  PathProbe() = default;

  static Result<PathProbe> Prepare(const storage::Database* db,
                                   const ImplicitPreference& pref);

  /// Evaluates the preference's condition for the anchor tuple whose
  /// primary-key value is `anchor_key`.
  std::optional<double> TruthDegree(const storage::Value& anchor_key) const;

  const PathWalk& walk() const { return walk_; }
  const PathCondition& condition() const { return condition_; }

 private:
  PathWalk walk_;
  PathCondition condition_;
};

}  // namespace qp::core
