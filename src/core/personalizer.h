// Personalizer: the library's front door. Wires the three phases of query
// personalization together (Section 1): preference selection (top-K from the
// profile), preference integration, and personalized-answer generation
// satisfying L of the K preferences.
//
//   qp::core::Personalizer p(&db, &profile);
//   auto answer = p.Personalize("select title from movie",
//                               {.k = 10, .l = 2});

#pragma once

#include <optional>
#include <string>

#include "common/status.h"
#include "core/answer.h"
#include "core/descriptor.h"
#include "core/ppa.h"
#include "core/select_top_k.h"
#include "core/spa.h"
#include "stats/table_stats.h"

namespace qp::core {

/// Which answer-generation algorithm to run.
enum class AnswerAlgorithm {
  kSpa,
  kPpa,
};

/// Which preference-selection algorithm to run.
enum class SelectionAlgorithm {
  kFakeCrit,
  kSps,
};

/// \brief Everything configurable about one personalization call.
struct PersonalizeOptions {
  /// Number of top preferences to select (0 = all related preferences).
  size_t k = 10;
  /// Minimum preferences a tuple must satisfy (L <= K).
  size_t l = 1;
  /// Criticality threshold c0 (alternative/additional criterion to k).
  double min_criticality = 0.0;
  /// Instead of k / min_criticality, select preferences until results are
  /// guaranteed at least this doi (Section 4.2). Disabled when unset.
  std::optional<double> target_doi;
  /// Qualitative descriptor for the desired results ("best", "good", ...;
  /// Section 2): preferences are selected with the interval's lower bound
  /// as the doi target and answer tuples are filtered to the interval.
  /// Looked up in `descriptors` (the default registry when null).
  std::optional<std::string> descriptor;
  const DescriptorRegistry* descriptors = nullptr;
  /// Use the profile's stored ranking philosophy (Section 6.3) instead of
  /// `ranking` when the profile has one.
  bool use_profile_ranking = false;
  /// Return only the best `top_n` tuples (0 = all). PPA stops its remaining
  /// queries and probes as soon as the top-N have been safely emitted.
  size_t top_n = 0;
  /// Parallelism for answer generation: morsel-driven execution of SPA's
  /// integrated query, and of PPA's S/A queries plus its batched point
  /// probes. Results and emission order are identical at every value;
  /// 1 (the default) runs fully serial.
  size_t num_threads = 1;

  SelectionAlgorithm selection = SelectionAlgorithm::kFakeCrit;
  AnswerAlgorithm algorithm = AnswerAlgorithm::kPpa;
  RankingFunction ranking =
      RankingFunction::Make(CombinationStyle::kInflationary);
  /// Progressive emission callback (PPA only).
  std::function<void(const PersonalizedTuple&)> on_emit;
};

/// \brief Binds a database and a user profile and answers queries
/// personally.
class Personalizer {
 public:
  /// Builds the personalization graph eagerly; fails if the profile does
  /// not validate against the database.
  static Result<Personalizer> Make(const storage::Database* db,
                                   const UserProfile* profile);

  /// Runs the full pipeline on a parsed query.
  Result<PersonalizedAnswer> Personalize(const sql::SelectQuery& query,
                                         const PersonalizeOptions& options);

  /// Convenience: parses `sql` first. The query must be a single SELECT.
  Result<PersonalizedAnswer> Personalize(const std::string& sql,
                                         const PersonalizeOptions& options);

  /// Phase 1 only: the top-K preferences the options would select.
  Result<std::vector<SelectedPreference>> SelectPreferences(
      const sql::SelectQuery& query, const PersonalizeOptions& options);

  /// Executes the query unchanged (the non-personalized baseline of the
  /// paper's user study).
  Result<exec::RowSet> ExecuteUnchanged(const sql::SelectQuery& query);

  const PersonalizationGraph& graph() const { return graph_; }

 private:
  Personalizer(const storage::Database* db, const UserProfile* profile,
               PersonalizationGraph graph)
      : db_(db), profile_(profile), graph_(std::move(graph)), stats_(db) {}

  const storage::Database* db_;
  const UserProfile* profile_;
  PersonalizationGraph graph_;
  stats::StatsManager stats_;
};

}  // namespace qp::core
