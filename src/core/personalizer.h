// Personalizer: the library's cold-path front door. Wires the three phases
// of query personalization together (Section 1): preference selection
// (top-K from the profile), preference integration, and personalized-answer
// generation satisfying L of the K preferences. Every call runs the full
// pipeline from scratch; qp::serve wraps the same pipeline stages with
// per-user caching (see core/pipeline.h and serve/serving_context.h).
//
//   qp::core::Personalizer p(&db, &profile);
//   auto answer = p.Personalize("select title from movie",
//                               {.k = 10, .l = 2});

#pragma once

#include <optional>
#include <string>

#include "common/status.h"
#include "core/answer.h"
#include "core/descriptor.h"
#include "core/pipeline.h"
#include "core/ppa.h"
#include "core/select_top_k.h"
#include "core/spa.h"
#include "stats/table_stats.h"

namespace qp::core {

/// \brief Binds a database and a user profile and answers queries
/// personally.
class Personalizer {
 public:
  /// Builds the personalization graph eagerly; fails if the profile does
  /// not validate against the database.
  static Result<Personalizer> Make(const storage::Database* db,
                                   const UserProfile* profile);

  /// Runs the full pipeline on a parsed query.
  Result<PersonalizedAnswer> Personalize(const sql::SelectQuery& query,
                                         const PersonalizeOptions& options);

  /// Convenience: parses `sql` first. The query must be a single SELECT
  /// (kInvalidQuery otherwise).
  Result<PersonalizedAnswer> Personalize(const std::string& sql,
                                         const PersonalizeOptions& options);

  /// Phase 1 only: the top-K preferences the options would select.
  Result<std::vector<SelectedPreference>> SelectPreferences(
      const sql::SelectQuery& query, const PersonalizeOptions& options);

  /// Executes the query unchanged (the non-personalized baseline of the
  /// paper's user study).
  Result<exec::RowSet> ExecuteUnchanged(const sql::SelectQuery& query);

  const PersonalizationGraph& graph() const { return graph_; }

 private:
  Personalizer(const storage::Database* db, const UserProfile* profile,
               PersonalizationGraph graph)
      : db_(db), profile_(profile), graph_(std::move(graph)), stats_(db) {}

  const storage::Database* db_;
  const UserProfile* profile_;
  PersonalizationGraph graph_;
  stats::StatsManager stats_;
};

}  // namespace qp::core
