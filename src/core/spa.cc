#include "core/spa.h"

#include <chrono>

namespace qp::core {

using sql::Expr;
using sql::ExprPtr;
using sql::SelectQuery;
using sql::TableRef;
using storage::Value;

Result<sql::QueryPtr> SpaGenerator::BuildPersonalizedQuery(
    const SelectQuery& base, const std::vector<SelectedPreference>& preferences,
    size_t L) const {
  if (preferences.empty()) {
    return Status::InvalidQuery("no preferences to integrate");
  }
  for (const auto& item : base.select) {
    if (item.OutputName() == "degree") {
      return Status::InvalidQuery(
          "base query already projects a column named 'degree'");
    }
  }

  std::vector<SelectQuery> branches;
  branches.reserve(preferences.size());
  for (const auto& selected : preferences) {
    QP_ASSIGN_OR_RETURN(
        SelectQuery branch,
        rewriter_.BuildSatisfactionQuery(base, selected.pref));
    // Join fan-out may return the same base tuple several times within one
    // sub-query (e.g. an actor cast twice in a movie); each preference must
    // count once toward L, so group the branch by the projection and keep
    // the strongest degree.
    SelectQuery grouped;
    grouped.from = branch.from;
    grouped.where = branch.where;
    for (size_t c = 0; c + 1 < branch.select.size(); ++c) {
      grouped.select.push_back(branch.select[c]);
      grouped.group_by.push_back(branch.select[c].expr);
    }
    grouped.select.push_back(
        {Expr::Aggregate("max", branch.select.back().expr), "degree"});
    branches.push_back(std::move(grouped));
  }
  sql::QueryPtr united = sql::Query::UnionAll(std::move(branches));

  // Outer query: group by the original projection, HAVING count >= L,
  // order by rank(degree) descending.
  SelectQuery outer;
  outer.from.push_back(TableRef{std::string(), std::string("u"), united});
  for (const auto& item : base.select) {
    ExprPtr col = Expr::Column("u", item.OutputName());
    outer.select.push_back({col, item.OutputName()});
    outer.group_by.push_back(col);
  }
  ExprPtr rank = Expr::Aggregate("rank", Expr::Column("u", "degree"));
  outer.select.push_back({rank, "doi"});
  outer.having =
      Expr::Compare(sql::BinaryOp::kGe, Expr::Aggregate("count", nullptr),
                    Expr::Literal(Value(static_cast<int64_t>(L))));
  outer.order_by.push_back({rank, /*ascending=*/false});
  return sql::Query::Single(std::move(outer));
}

namespace {

/// The UDA behind rank(degree): collects satisfaction degrees and applies
/// the positive combination of the configured ranking function.
class RankAggregator : public exec::Aggregator {
 public:
  explicit RankAggregator(const RankingFunction* ranking)
      : ranking_(ranking) {}

  void Add(const Value& v) override {
    if (v.is_numeric()) degrees_.push_back(v.ToNumeric());
  }
  Value Finalize() const override {
    return Value(ranking_->RankPositive(degrees_));
  }

 private:
  const RankingFunction* ranking_;
  mutable std::vector<double> degrees_;
};

}  // namespace

Result<SpaGenerator::Plan> SpaGenerator::BuildPlan(
    const SelectQuery& base, const std::vector<SelectedPreference>& preferences,
    size_t L) const {
  Plan plan;
  QP_ASSIGN_OR_RETURN(plan.query, BuildPersonalizedQuery(base, preferences, L));
  plan.preferences = preferences;
  return plan;
}

Result<PersonalizedAnswer> SpaGenerator::Generate(
    const SelectQuery& base, const std::vector<SelectedPreference>& preferences,
    size_t L) const {
  QP_ASSIGN_OR_RETURN(Plan plan, BuildPlan(base, preferences, L));
  return GenerateWithPlan(plan);
}

Result<PersonalizedAnswer> SpaGenerator::GenerateWithPlan(
    const Plan& plan, obs::TraceSpan* trace) const {
  const auto start = std::chrono::steady_clock::now();
  const sql::QueryPtr& query = plan.query;
  const std::vector<SelectedPreference>& preferences = plan.preferences;

  exec::AggregateRegistry registry;
  const RankingFunction* ranking = &ranking_;
  QP_RETURN_IF_ERROR(registry.Register("rank", [ranking]() {
    return std::unique_ptr<exec::Aggregator>(new RankAggregator(ranking));
  }));
  exec::Executor executor(db_, &registry, exec_options_);
  QP_ASSIGN_OR_RETURN(exec::RowSet rows, executor.Execute(*query, trace));

  PersonalizedAnswer answer;
  answer.preferences = preferences;
  // Output columns: everything except the trailing doi column.
  for (size_t c = 0; c + 1 < rows.num_columns(); ++c) {
    answer.columns.push_back(rows.columns()[c]);
  }
  for (auto& row : rows.rows()) {
    PersonalizedTuple t;
    t.doi = row.back().is_numeric() ? row.back().ToNumeric() : 0.0;
    row.pop_back();
    t.values = std::move(row);
    answer.tuples.push_back(std::move(t));
  }
  const auto end = std::chrono::steady_clock::now();
  answer.stats.generation_seconds =
      std::chrono::duration<double>(end - start).count();
  answer.stats.first_response_seconds = answer.stats.generation_seconds;
  const exec::ExecStats exec_stats = executor.stats();
  answer.stats.queries_executed = exec_stats.queries_executed;
  answer.stats.tuples_returned = answer.tuples.size();
  answer.stats.rows_scanned = exec_stats.rows_scanned;
  answer.stats.rows_joined = exec_stats.rows_joined;
  answer.stats.rows_materialized = exec_stats.rows_output;
  answer.stats.paths_scan = exec_stats.paths_scan;
  answer.stats.paths_probe = exec_stats.paths_probe;
  answer.stats.paths_range = exec_stats.paths_range;
  answer.stats.thread_seconds = executor.thread_seconds();
  answer.stats.rows_examined = executor.rows_examined();
  return answer;
}

}  // namespace qp::core
