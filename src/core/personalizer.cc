#include "core/personalizer.h"

#include <chrono>

namespace qp::core {

Result<Personalizer> Personalizer::Make(const storage::Database* db,
                                        const UserProfile* profile) {
  QP_ASSIGN_OR_RETURN(PersonalizationGraph graph,
                      PersonalizationGraph::Build(db, profile));
  return Personalizer(db, profile, std::move(graph));
}

Result<std::vector<SelectedPreference>> Personalizer::SelectPreferences(
    const sql::SelectQuery& query, const PersonalizeOptions& options) {
  QP_ASSIGN_OR_RETURN(ResolvedPersonalization resolved,
                      ResolvePersonalization(options, *profile_));
  return RunSelection(graph_, query, options, resolved);
}

Result<PersonalizedAnswer> Personalizer::Personalize(
    const sql::SelectQuery& query, const PersonalizeOptions& options) {
  QP_ASSIGN_OR_RETURN(ResolvedPersonalization resolved,
                      ResolvePersonalization(options, *profile_));
  const auto select_start = std::chrono::steady_clock::now();
  obs::TraceSpan* select_span =
      options.trace != nullptr ? options.trace->AddChild("selection")
                               : nullptr;
  QP_ASSIGN_OR_RETURN(std::vector<SelectedPreference> preferences,
                      RunSelection(graph_, query, options, resolved));
  const double selection_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    select_start)
          .count();
  if (select_span != nullptr) {
    select_span->AddAttr("preferences", preferences.size());
    select_span->set_seconds(selection_seconds);
  }
  QP_RETURN_IF_ERROR(ValidateSelection(preferences, options));
  obs::TraceSpan* plan_span =
      options.trace != nullptr ? options.trace->AddChild("plan") : nullptr;
  obs::SpanTimer plan_timer(plan_span);
  QP_ASSIGN_OR_RETURN(
      IntegrationPlan plan,
      BuildIntegrationPlan(db_, &stats_, query, preferences, options));
  plan_timer.Stop();
  if (plan_span != nullptr) {
    plan_span->AddAttr(
        "algorithm", plan.algorithm == AnswerAlgorithm::kSpa ? "spa" : "ppa");
  }
  QP_ASSIGN_OR_RETURN(PersonalizedAnswer answer,
                      ExecuteIntegrationPlan(db_, plan, options, resolved));
  FinalizeAnswer(resolved, selection_seconds, answer);
  return answer;
}

Result<PersonalizedAnswer> Personalizer::Personalize(
    const std::string& sql, const PersonalizeOptions& options) {
  QP_ASSIGN_OR_RETURN(sql::SelectQuery query, ParseSingleSelect(sql));
  return Personalize(query, options);
}

Result<exec::RowSet> Personalizer::ExecuteUnchanged(
    const sql::SelectQuery& query) {
  exec::Executor executor(db_);
  return executor.Execute(*sql::Query::Single(query));
}

}  // namespace qp::core
