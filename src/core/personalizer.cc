#include "core/personalizer.h"

#include <chrono>

#include "sql/parser.h"

namespace qp::core {

Result<Personalizer> Personalizer::Make(const storage::Database* db,
                                        const UserProfile* profile) {
  QP_ASSIGN_OR_RETURN(PersonalizationGraph graph,
                      PersonalizationGraph::Build(db, profile));
  return Personalizer(db, profile, std::move(graph));
}

namespace {

/// Resolves the options' ranking function (profile override) and, when a
/// descriptor is set, the target interval.
struct ResolvedOptions {
  RankingFunction ranking;
  std::optional<DoiInterval> interval;
};

Result<ResolvedOptions> ResolveOptions(const PersonalizeOptions& options,
                                       const UserProfile& profile) {
  ResolvedOptions out;
  out.ranking = options.use_profile_ranking
                    ? profile.PreferredRankingOr(options.ranking)
                    : options.ranking;
  if (options.descriptor.has_value()) {
    const DescriptorRegistry default_registry = DescriptorRegistry::Default();
    const DescriptorRegistry* registry = options.descriptors != nullptr
                                             ? options.descriptors
                                             : &default_registry;
    QP_ASSIGN_OR_RETURN(out.interval, registry->Lookup(*options.descriptor));
  }
  return out;
}

}  // namespace

Result<std::vector<SelectedPreference>> Personalizer::SelectPreferences(
    const sql::SelectQuery& query, const PersonalizeOptions& options) {
  QP_ASSIGN_OR_RETURN(ResolvedOptions resolved,
                      ResolveOptions(options, *profile_));
  const QueryContext ctx = QueryContext::FromQuery(query);
  PreferenceSelector selector(&graph_);
  std::optional<double> target = options.target_doi;
  if (!target.has_value() && resolved.interval.has_value()) {
    target = std::max(0.0, resolved.interval->lo);
  }
  if (target.has_value()) {
    PreferenceSelector::DoiTargetOptions doi_options;
    doi_options.target_doi = *target;
    doi_options.ranking = resolved.ranking;
    return selector.SelectByResultInterest(ctx, doi_options);
  }
  SelectionCriterion criterion{options.k, options.min_criticality};
  if (options.selection == SelectionAlgorithm::kSps) {
    return selector.SelectSPS(ctx, criterion);
  }
  return selector.SelectFakeCrit(ctx, criterion);
}

Result<PersonalizedAnswer> Personalizer::Personalize(
    const sql::SelectQuery& query, const PersonalizeOptions& options) {
  const auto select_start = std::chrono::steady_clock::now();
  QP_ASSIGN_OR_RETURN(std::vector<SelectedPreference> preferences,
                      SelectPreferences(query, options));
  const double selection_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    select_start)
          .count();
  if (preferences.empty()) {
    return Status::NotFound(
        "no preferences in the profile relate to this query");
  }
  if (options.l > preferences.size()) {
    return Status::InvalidArgument(
        "L = " + std::to_string(options.l) + " exceeds the " +
        std::to_string(preferences.size()) + " selected preferences");
  }

  QP_ASSIGN_OR_RETURN(ResolvedOptions resolved,
                      ResolveOptions(options, *profile_));
  Result<PersonalizedAnswer> answer = Status::Internal("unset");
  if (options.algorithm == AnswerAlgorithm::kSpa) {
    exec::ExecOptions exec_options;
    exec_options.num_threads = options.num_threads;
    SpaGenerator spa(db_, resolved.ranking, exec_options);
    answer = spa.Generate(query, preferences, options.l);
    if (answer.ok() && options.top_n > 0 &&
        answer->tuples.size() > options.top_n) {
      answer->tuples.resize(options.top_n);
      answer->stats.tuples_returned = answer->tuples.size();
    }
  } else {
    PpaGenerator ppa(db_, &stats_);
    PpaGenerator::Options ppa_options;
    ppa_options.L = options.l;
    ppa_options.ranking = resolved.ranking;
    ppa_options.on_emit = options.on_emit;
    ppa_options.top_n = options.top_n;
    ppa_options.num_threads = options.num_threads;
    answer = ppa.Generate(query, preferences, ppa_options);
  }
  if (!answer.ok()) return answer.status();
  answer->stats.selection_seconds = selection_seconds;
  if (resolved.interval.has_value()) {
    // Keep only tuples whose doi falls in the descriptor's interval.
    std::vector<PersonalizedTuple> kept;
    for (auto& t : answer->tuples) {
      if (resolved.interval->Contains(t.doi)) kept.push_back(std::move(t));
    }
    answer->tuples = std::move(kept);
    answer->stats.tuples_returned = answer->tuples.size();
  }
  return answer;
}

Result<PersonalizedAnswer> Personalizer::Personalize(
    const std::string& sql, const PersonalizeOptions& options) {
  QP_ASSIGN_OR_RETURN(sql::QueryPtr query, sql::ParseQuery(sql));
  if (query->is_union()) {
    return Status::InvalidArgument(
        "personalization applies to a single SELECT block");
  }
  return Personalize(query->single(), options);
}

Result<exec::RowSet> Personalizer::ExecuteUnchanged(
    const sql::SelectQuery& query) {
  exec::Executor executor(db_);
  return executor.Execute(*sql::Query::Single(query));
}

}  // namespace qp::core
