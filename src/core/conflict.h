// Conflict detection between a preference and the query it would extend
// (FakeCrit step 1.1: "If ACi does not conflict with Q"). A preference
// conflicts when its satisfaction condition cannot hold together with the
// query's own conditions on the same attribute — integrating it would build
// a subquery that returns nothing.

#pragma once

#include <vector>

#include "core/preference.h"
#include "sql/query.h"

namespace qp::core {

/// \brief The parts of a query the selection algorithms need: which
/// relations it references and its atomic selection conditions.
struct QueryContext {
  /// Lower-cased relation names in the FROM clause (base tables only).
  std::vector<std::string> relations;
  /// Atomic `attr op literal` conditions from the WHERE conjunction.
  std::vector<SelectionCondition> atoms;

  /// Extracts the context from a select block.
  static QueryContext FromQuery(const sql::SelectQuery& query);

  bool MentionsRelation(const std::string& relation) const;
};

/// True when two atomic conditions on the same attribute cannot both hold.
/// Conditions on different attributes never conflict. Unsupported operator
/// combinations conservatively return false.
bool ConditionsContradict(const SelectionCondition& a,
                          const SelectionCondition& b);

/// True when the satisfaction condition of `pref` contradicts some query
/// atom. Elastic preferences use their satisfaction support range.
bool ConflictsWithQuery(const SelectionPreference& pref,
                        const QueryContext& ctx);

}  // namespace qp::core
