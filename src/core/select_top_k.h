// Preference selection (Section 4): extracting the top-K preferences related
// to a query, in decreasing degree of criticality.
//
// Two criticality-based algorithms are provided:
//  - SPS (Simple Preference Selection): best-first on true criticality; an
//    implicit selection is emitted only once it provably precedes the most
//    critical selection unseen (worst-case bound c_S <= 2 c_J, Formula 8).
//  - FakeCrit (Figure 5): best-first on c * fc, where the per-edge fake
//    criticality fc turns the worst-case bound into a tighter, cheaply
//    maintained one, making every popped selection immediately emittable.
//
// Both produce identical result sets in identical order; FakeCrit examines
// fewer paths (the §4.1 claim reproduced by bench_ablation_sps_vs_fakecrit).
//
// Selection by desired result interest (Section 4.2) extends FakeCrit: it
// stops once results satisfying the selected preferences are guaranteed a
// doi of at least `target_doi` even if every remaining (unseen) preference
// fails, using the d_worst bound over the frontier.

#pragma once

#include <vector>

#include "common/status.h"
#include "core/conflict.h"
#include "core/graph.h"
#include "core/ranking.h"

namespace qp::core {

/// Stopping criterion C (Section 4.1): top-K count and/or a criticality
/// threshold c0. Zero disables a bound.
struct SelectionCriterion {
  size_t top_k = 0;
  double min_criticality = 0.0;

  static SelectionCriterion TopK(size_t k) { return {k, 0.0}; }
  static SelectionCriterion Threshold(double c0) { return {0, c0}; }
};

/// One selected (atomic or implicit) preference.
struct SelectedPreference {
  ImplicitPreference pref;
  double criticality = 0.0;

  bool operator==(const SelectedPreference&) const = default;
};

/// Work counters used by the SPS-vs-FakeCrit ablation.
struct SelectionStats {
  size_t paths_generated = 0;   ///< queue insertions
  size_t paths_examined = 0;    ///< queue pops
  size_t expansions = 0;        ///< join-path expansions
};

/// \brief Preference-selection algorithms over a personalization graph.
class PreferenceSelector {
 public:
  explicit PreferenceSelector(const PersonalizationGraph* graph)
      : graph_(graph) {}

  /// SPS: best-first on criticality with the worst-case mcsu bound.
  Result<std::vector<SelectedPreference>> SelectSPS(
      const QueryContext& query, const SelectionCriterion& criterion,
      SelectionStats* stats = nullptr) const;

  /// FakeCrit (Figure 5): best-first on c * fc.
  Result<std::vector<SelectedPreference>> SelectFakeCrit(
      const QueryContext& query, const SelectionCriterion& criterion,
      SelectionStats* stats = nullptr) const;

  /// Options for doi-target selection (Section 4.2).
  struct DoiTargetOptions {
    /// Minimum guaranteed doi d_R of returned tuples.
    double target_doi = 0.8;
    /// Mixed ranking function used for the estimate (Formula 10).
    RankingFunction ranking =
        RankingFunction::Make(CombinationStyle::kInflationary);
    /// Estimate N from per-join-edge path counts instead of the profile
    /// size (the paper's "periodic updates" statistic).
    bool use_path_counts = false;
    /// Safety valve: stop after this many selections even if the target was
    /// not reached (0 = none).
    size_t max_preferences = 0;
  };

  /// Selection by desired interest of results.
  Result<std::vector<SelectedPreference>> SelectByResultInterest(
      const QueryContext& query, const DoiTargetOptions& options,
      SelectionStats* stats = nullptr) const;

 private:
  const PersonalizationGraph* graph_;
};

}  // namespace qp::core
