#include "core/doi.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace qp::core {

namespace {

Status CheckDegree(double d) {
  if (std::isnan(d) || d < -1.0 || d > 1.0) {
    return Status::InvalidArgument("degree of interest " + FormatDouble(d) +
                                   " outside [-1, 1]");
  }
  return Status::OK();
}

}  // namespace

Result<DoiFunction> DoiFunction::Constant(double d) {
  QP_RETURN_IF_ERROR(CheckDegree(d));
  DoiFunction f;
  f.shape_ = DoiShape::kConstant;
  f.degree_ = d;
  return f;
}

Result<DoiFunction> DoiFunction::Triangular(double d, double center,
                                            double half_width) {
  QP_RETURN_IF_ERROR(CheckDegree(d));
  if (half_width <= 0) {
    return Status::InvalidArgument("triangular half_width must be positive");
  }
  DoiFunction f;
  f.shape_ = DoiShape::kTriangular;
  f.degree_ = d;
  f.support_lo_ = center - half_width;
  f.support_hi_ = center + half_width;
  f.core_lo_ = f.core_hi_ = center;
  return f;
}

Result<DoiFunction> DoiFunction::Trapezoidal(double d, double support_lo,
                                             double core_lo, double core_hi,
                                             double support_hi) {
  QP_RETURN_IF_ERROR(CheckDegree(d));
  if (!(support_lo <= core_lo && core_lo <= core_hi &&
        core_hi <= support_hi)) {
    return Status::InvalidArgument(
        "trapezoid requires support_lo <= core_lo <= core_hi <= support_hi");
  }
  if (support_lo == support_hi) {
    return Status::InvalidArgument("trapezoid support must be non-degenerate");
  }
  DoiFunction f;
  f.shape_ = DoiShape::kTrapezoidal;
  f.degree_ = d;
  f.support_lo_ = support_lo;
  f.support_hi_ = support_hi;
  f.core_lo_ = core_lo;
  f.core_hi_ = core_hi;
  return f;
}

double DoiFunction::Eval(double u) const {
  switch (shape_) {
    case DoiShape::kConstant:
      return degree_;
    case DoiShape::kTriangular:
    case DoiShape::kTrapezoidal: {
      if (u <= support_lo_ || u >= support_hi_) {
        // Zero at the open boundary unless the core touches it.
        if (u < support_lo_ || u > support_hi_) return 0.0;
        if (u == support_lo_ && core_lo_ == support_lo_) return degree_;
        if (u == support_hi_ && core_hi_ == support_hi_) return degree_;
        return 0.0;
      }
      if (u >= core_lo_ && u <= core_hi_) return degree_;
      if (u < core_lo_) {
        return degree_ * (u - support_lo_) / (core_lo_ - support_lo_);
      }
      return degree_ * (support_hi_ - u) / (support_hi_ - core_hi_);
    }
  }
  return 0.0;
}

double DoiFunction::Eval(const storage::Value& v) const {
  if (v.is_null()) return 0.0;
  if (shape_ == DoiShape::kConstant) return degree_;
  if (!v.is_numeric()) return 0.0;
  return Eval(v.ToNumeric());
}

std::string DoiFunction::ToString() const {
  switch (shape_) {
    case DoiShape::kConstant:
      return FormatDouble(degree_);
    case DoiShape::kTriangular: {
      const double center = core_lo_;
      return "e(" + FormatDouble(degree_) + ")[center=" + FormatDouble(center) +
             ",w=" + FormatDouble(support_hi_ - center) + "]";
    }
    case DoiShape::kTrapezoidal:
      return "e(" + FormatDouble(degree_) + ")[" + FormatDouble(support_lo_) +
             "," + FormatDouble(core_lo_) + "," + FormatDouble(core_hi_) + "," +
             FormatDouble(support_hi_) + "]";
  }
  return "?";
}

Result<DoiPair> DoiPair::Make(DoiFunction d_true, DoiFunction d_false) {
  // Sign condition dT(u) * dF(u) <= 0: since each function has one sign,
  // it reduces to sign(dT) * sign(dF) <= 0 on their characteristic degrees.
  if (d_true.degree() * d_false.degree() > 0.0) {
    return Status::InvalidArgument(
        "invalid preference: dT and dF must not have the same sign (dT=" +
        FormatDouble(d_true.degree()) + ", dF=" +
        FormatDouble(d_false.degree()) + ")");
  }
  DoiPair p;
  p.d_true_ = std::move(d_true);
  p.d_false_ = std::move(d_false);
  return p;
}

Result<DoiPair> DoiPair::Exact(double d_true, double d_false) {
  QP_ASSIGN_OR_RETURN(DoiFunction t, DoiFunction::Constant(d_true));
  QP_ASSIGN_OR_RETURN(DoiFunction f, DoiFunction::Constant(d_false));
  return Make(std::move(t), std::move(f));
}

double DoiPair::SatisfactionDegree() const {
  return std::max({d_true_.degree(), d_false_.degree(), 0.0});
}

double DoiPair::FailureDegree() const {
  return std::min({d_true_.degree(), d_false_.degree(), 0.0});
}

bool DoiPair::SatisfiedWhenTrue() const {
  // The satisfaction side is the branch achieving d0+ (paper Section 3.3:
  // satisfaction of <q, doi> means q true if dT >= 0, q false if dF >= 0).
  // For a pure-negative preference (dT < 0, dF = 0) satisfaction is q false
  // with degree 0.
  return d_true_.degree() >= d_false_.degree();
}

DoiPair DoiPair::Scaled(double factor) const {
  DoiPair p = *this;
  // Scale characteristic degrees while keeping shapes.
  auto scale = [factor](DoiFunction f) {
    // Rebuild with scaled degree; shapes/supports preserved.
    switch (f.shape()) {
      case DoiShape::kConstant:
        return *DoiFunction::Constant(f.degree() * factor);
      case DoiShape::kTriangular: {
        const double center = f.core_lo();
        if (f.degree() * factor == 0.0) return DoiFunction();
        return *DoiFunction::Triangular(f.degree() * factor, center,
                                        f.support_hi() - center);
      }
      case DoiShape::kTrapezoidal:
        if (f.degree() * factor == 0.0) return DoiFunction();
        return *DoiFunction::Trapezoidal(f.degree() * factor, f.support_lo(),
                                         f.core_lo(), f.core_hi(),
                                         f.support_hi());
    }
    return DoiFunction();
  };
  p.d_true_ = scale(d_true_);
  p.d_false_ = scale(d_false_);
  return p;
}

std::string DoiPair::ToString() const {
  return "(" + d_true_.ToString() + ", " + d_false_.ToString() + ")";
}

}  // namespace qp::core
