// User profiles: the stored set of atomic preferences (Section 3, Figure 2).
//
// Profiles serialize to/from a text format mirroring the paper's notation:
//
//   # Al's profile
//   doi(DIRECTOR.name = 'W. Allen') = (0.8, 0)
//   doi(MOVIE.year < 1980) = (-0.7, 0)
//   doi(MOVIE.duration = 120) = (e(0.7)[90,150], e(-0.5)[90,150])
//   doi(MOVIE.mid = DIRECTED.mid) = (1)
//
// Elastic components: e(d)[lo,hi] is triangular (peak at the condition's
// target value, support [lo,hi]); e(d)[a,b,c,d] is trapezoidal.

#pragma once

#include <string>
#include <vector>

#include <optional>

#include "common/status.h"
#include "core/preference.h"
#include "core/ranking.h"
#include "storage/database.h"

namespace qp::core {

/// Renders one doi component in the profile text format: a bare degree for
/// constants, "e(d)[support_lo,core_lo,core_hi,support_hi]" for elastic.
std::string SerializeDoiFunction(const DoiFunction& f);

/// \brief A user's stored atomic preferences.
class UserProfile {
 public:
  UserProfile() = default;

  /// Adds a selection preference. Fails on: indifferent doi (the paper does
  /// not store them), duplicate condition, elastic doi on a non-numeric
  /// target value.
  Status AddSelection(SelectionPreference pref);

  /// Adds a join preference. Fails if degree is outside [0, 1] or the
  /// directed edge already exists.
  Status AddJoin(JoinPreference pref);

  /// Convenience: parses "TABLE.attr" strings and builds the preference.
  Status AddSelection(const std::string& attr, sql::BinaryOp op,
                      storage::Value value, DoiPair doi);
  Status AddJoin(const std::string& from_attr, const std::string& to_attr,
                 double degree);

  /// Removes the selection preference with exactly this condition; NotFound
  /// if absent. Any PersonalizationGraph built over this profile must call
  /// RefreshDerivedStats() afterwards (its edge pointers are rebuilt there).
  Status RemoveSelection(const SelectionCondition& condition);

  /// Removes the directed join preference from -> to; NotFound if absent.
  Status RemoveJoin(const storage::AttributeRef& from,
                    const storage::AttributeRef& to);

  const std::vector<SelectionPreference>& selections() const {
    return selections_;
  }
  const std::vector<JoinPreference>& joins() const { return joins_; }

  /// Total number of stored atomic preferences (the paper's estimate for N
  /// in Section 4.2).
  size_t NumPreferences() const { return selections_.size() + joins_.size(); }

  /// Selection preferences whose attribute belongs to `relation`.
  std::vector<const SelectionPreference*> SelectionsOn(
      const std::string& relation) const;

  /// Join preferences leaving `relation`.
  std::vector<const JoinPreference*> JoinsFrom(
      const std::string& relation) const;

  /// The user's learned ranking philosophy (Section 6.3 suggests storing
  /// it in the profile); see core/learn_ranking.h for how it is fit.
  void set_preferred_ranking(RankingFunction ranking) {
    preferred_ranking_ = ranking;
    ++epoch_;
  }
  void clear_preferred_ranking() {
    preferred_ranking_.reset();
    ++epoch_;
  }

  /// Monotonic mutation counter: bumped by every successful profile change
  /// (add/remove preference, ranking-philosophy update). Consumers that
  /// derive state from the profile — the personalization graph, selected
  /// preference sets, rewritten query plans — record the epoch they were
  /// built under and treat a mismatch as invalidation (qp::serve does
  /// exactly this). Copies carry the source's epoch and keep counting
  /// independently from there.
  uint64_t epoch() const { return epoch_; }
  const std::optional<RankingFunction>& preferred_ranking() const {
    return preferred_ranking_;
  }
  /// The stored ranking function, or `fallback` when none was learned.
  RankingFunction PreferredRankingOr(RankingFunction fallback) const {
    return preferred_ranking_.value_or(fallback);
  }

  /// Checks every referenced attribute against `db` (existence and, for
  /// elastic preferences, numeric type).
  Status Validate(const storage::Database& db) const;

  /// Renders the Figure-2 style text form.
  std::string Serialize() const;

  /// Parses the text form ('#' starts a comment line).
  static Result<UserProfile> Parse(const std::string& text);

  /// File I/O wrappers around Serialize/Parse.
  Status Save(const std::string& path) const;
  static Result<UserProfile> Load(const std::string& path);

 private:
  std::vector<SelectionPreference> selections_;
  std::vector<JoinPreference> joins_;
  std::optional<RankingFunction> preferred_ranking_;
  uint64_t epoch_ = 0;
};

}  // namespace qp::core
