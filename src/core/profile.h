// User profiles: the stored set of atomic preferences (Section 3, Figure 2).
//
// Profiles serialize to/from a text format mirroring the paper's notation:
//
//   # Al's profile
//   doi(DIRECTOR.name = 'W. Allen') = (0.8, 0)
//   doi(MOVIE.year < 1980) = (-0.7, 0)
//   doi(MOVIE.duration = 120) = (e(0.7)[90,150], e(-0.5)[90,150])
//   doi(MOVIE.mid = DIRECTED.mid) = (1)
//
// Elastic components: e(d)[lo,hi] is triangular (peak at the condition's
// target value, support [lo,hi]); e(d)[a,b,c,d] is trapezoidal.

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include <optional>

#include "common/status.h"
#include "core/preference.h"
#include "core/ranking.h"
#include "storage/database.h"

namespace qp::core {

/// Renders one doi component in the profile text format: a bare degree for
/// constants, "e(d)[support_lo,core_lo,core_hi,support_hi]" for elastic.
std::string SerializeDoiFunction(const DoiFunction& f);

/// What one successful profile mutation did. The journal entries drive
/// incremental invalidation: consumers holding state derived at an older
/// epoch ask MutationsSince() for the exact delta and repair instead of
/// rebuilding.
enum class ProfileMutationKind {
  kAddSelection,
  kRemoveSelection,
  /// Doi pair of an existing selection preference replaced in place
  /// (UpdateSelectionDoi): the condition set is unchanged, only degrees —
  /// and therefore criticalities and derived graph statistics — moved.
  kUpdateSelectionDoi,
  kAddJoin,
  kRemoveJoin,
  /// set_preferred_ranking / clear_preferred_ranking: no preference and no
  /// graph structure changed, only the resolved ranking.
  kSetRanking,
};

/// \brief One journal entry: the mutation that produced `epoch`.
struct ProfileMutation {
  uint64_t epoch = 0;  ///< UserProfile::epoch() AFTER this mutation
  ProfileMutationKind kind = ProfileMutationKind::kSetRanking;
  /// Selection mutations: the (unique) condition touched.
  SelectionCondition condition;
  /// Join mutations: the directed edge touched.
  storage::AttributeRef join_from, join_to;

  /// Relations whose graph neighborhood this mutation can change: the
  /// condition's relation for selection mutations, both endpoints for join
  /// mutations, none for ranking swaps.
  std::vector<std::string> AffectedRelations() const;

  /// True when the mutation changes the number of stored preferences —
  /// which invalidates derived state that depends on the global profile
  /// size (the doi-target selection's N estimate), not just on the touched
  /// relations.
  bool ChangesPreferenceCount() const {
    return kind == ProfileMutationKind::kAddSelection ||
           kind == ProfileMutationKind::kRemoveSelection ||
           kind == ProfileMutationKind::kAddJoin ||
           kind == ProfileMutationKind::kRemoveJoin;
  }

  std::string ToString() const;
};

/// \brief A user's stored atomic preferences.
class UserProfile {
 public:
  UserProfile() = default;

  /// Adds a selection preference. Fails on: indifferent doi (the paper does
  /// not store them), duplicate condition, elastic doi on a non-numeric
  /// target value.
  Status AddSelection(SelectionPreference pref);

  /// Adds a join preference. Fails if degree is outside [0, 1] or the
  /// directed edge already exists.
  Status AddJoin(JoinPreference pref);

  /// Convenience: parses "TABLE.attr" strings and builds the preference.
  Status AddSelection(const std::string& attr, sql::BinaryOp op,
                      storage::Value value, DoiPair doi);
  Status AddJoin(const std::string& from_attr, const std::string& to_attr,
                 double degree);

  /// Removes the selection preference with exactly this condition; NotFound
  /// if absent. Any PersonalizationGraph built over this profile must call
  /// RefreshDerivedStats() afterwards (its edge pointers are rebuilt there).
  Status RemoveSelection(const SelectionCondition& condition);

  /// Removes the directed join preference from -> to; NotFound if absent.
  Status RemoveJoin(const storage::AttributeRef& from,
                    const storage::AttributeRef& to);

  /// Replaces the doi pair of the selection preference with exactly this
  /// condition (the profile-churn fast path: degrees drift, conditions
  /// stay). NotFound if absent; the same validation as AddSelection applies
  /// to the new pair (no indifferent doi, elastic requires a numeric
  /// target).
  Status UpdateSelectionDoi(const SelectionCondition& condition, DoiPair doi);

  const std::vector<SelectionPreference>& selections() const {
    return selections_;
  }
  const std::vector<JoinPreference>& joins() const { return joins_; }

  /// Total number of stored atomic preferences (the paper's estimate for N
  /// in Section 4.2).
  size_t NumPreferences() const { return selections_.size() + joins_.size(); }

  /// Selection preferences whose attribute belongs to `relation`.
  std::vector<const SelectionPreference*> SelectionsOn(
      const std::string& relation) const;

  /// Join preferences leaving `relation`.
  std::vector<const JoinPreference*> JoinsFrom(
      const std::string& relation) const;

  /// The user's learned ranking philosophy (Section 6.3 suggests storing
  /// it in the profile); see core/learn_ranking.h for how it is fit.
  void set_preferred_ranking(RankingFunction ranking) {
    preferred_ranking_ = ranking;
    Journal(ProfileMutationKind::kSetRanking);
  }
  void clear_preferred_ranking() {
    preferred_ranking_.reset();
    Journal(ProfileMutationKind::kSetRanking);
  }

  /// Monotonic mutation counter: bumped by every successful profile change
  /// (add/remove preference, doi update, ranking-philosophy update).
  /// Consumers that derive state from the profile — the personalization
  /// graph, selected preference sets, rewritten query plans — record the
  /// epoch they were built under and treat a mismatch as invalidation
  /// (qp::serve does exactly this). Copies carry the source's epoch and
  /// keep counting independently from there.
  ///
  /// The read is atomic so a serving warm path can check staleness without
  /// a lock while a mutator holds the profile's external mutex; everything
  /// ELSE in the profile still requires that external serialization
  /// (serve::Session::Mutate provides it).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Identity of this profile's mutation lineage: fresh for every
  /// constructed (or parsed/loaded) profile, inherited by copies and
  /// moves. Epochs and journals of two different lineages are
  /// incomparable even when the numbers happen to align — qp::serve
  /// treats a lineage change (wholesale profile replacement through
  /// mutable_profile()) as beyond repair and rebuilds.
  uint64_t lineage() const { return lineage_; }

  /// The exact mutations that advanced epoch() past `since_epoch`, oldest
  /// first — empty when since_epoch == epoch(). nullopt when the bounded
  /// journal no longer reaches back that far (or since_epoch is from a
  /// different profile lineage); the caller must fall back to a wholesale
  /// rebuild.
  std::optional<std::vector<ProfileMutation>> MutationsSince(
      uint64_t since_epoch) const;

  /// Journal retention: how many most-recent mutations MutationsSince can
  /// reconstruct. Deltas larger than this cost a wholesale rebuild anyway.
  static constexpr size_t kJournalCapacity = 64;

  UserProfile(const UserProfile& other)
      : selections_(other.selections_),
        joins_(other.joins_),
        preferred_ranking_(other.preferred_ranking_),
        journal_(other.journal_),
        epoch_(other.epoch()),
        lineage_(other.lineage_) {}
  UserProfile& operator=(const UserProfile& other) {
    if (this == &other) return *this;
    selections_ = other.selections_;
    joins_ = other.joins_;
    preferred_ranking_ = other.preferred_ranking_;
    journal_ = other.journal_;
    epoch_.store(other.epoch(), std::memory_order_release);
    lineage_ = other.lineage_;
    return *this;
  }
  UserProfile(UserProfile&& other) noexcept
      : selections_(std::move(other.selections_)),
        joins_(std::move(other.joins_)),
        preferred_ranking_(std::move(other.preferred_ranking_)),
        journal_(std::move(other.journal_)),
        epoch_(other.epoch()),
        lineage_(other.lineage_) {}
  UserProfile& operator=(UserProfile&& other) noexcept {
    if (this == &other) return *this;
    selections_ = std::move(other.selections_);
    joins_ = std::move(other.joins_);
    preferred_ranking_ = std::move(other.preferred_ranking_);
    journal_ = std::move(other.journal_);
    epoch_.store(other.epoch(), std::memory_order_release);
    lineage_ = other.lineage_;
    return *this;
  }
  const std::optional<RankingFunction>& preferred_ranking() const {
    return preferred_ranking_;
  }
  /// The stored ranking function, or `fallback` when none was learned.
  RankingFunction PreferredRankingOr(RankingFunction fallback) const {
    return preferred_ranking_.value_or(fallback);
  }

  /// Checks every referenced attribute against `db` (existence and, for
  /// elastic preferences, numeric type).
  Status Validate(const storage::Database& db) const;

  /// Renders the Figure-2 style text form.
  std::string Serialize() const;

  /// Parses the text form ('#' starts a comment line).
  static Result<UserProfile> Parse(const std::string& text);

  /// File I/O wrappers around Serialize/Parse.
  Status Save(const std::string& path) const;
  static Result<UserProfile> Load(const std::string& path);

 private:
  /// Bumps the epoch and appends the matching journal entry (evicting the
  /// oldest once kJournalCapacity is exceeded). Every successful mutation
  /// funnels through here so epoch and journal can never disagree.
  ProfileMutation& Journal(ProfileMutationKind kind);

  /// Process-unique lineage id (monotonic counter).
  static uint64_t NextLineage();

  std::vector<SelectionPreference> selections_;
  std::vector<JoinPreference> joins_;
  std::optional<RankingFunction> preferred_ranking_;
  /// Most-recent mutations, oldest first; entry i produced epoch
  /// journal_[i].epoch. Bounded by kJournalCapacity.
  std::deque<ProfileMutation> journal_;
  /// Atomic for the lock-free staleness check; see epoch().
  std::atomic<uint64_t> epoch_{0};
  /// See lineage().
  uint64_t lineage_ = NextLineage();
};

}  // namespace qp::core
