#include "core/profile.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace qp::core {

using storage::AttributeRef;
using storage::Value;

std::vector<std::string> ProfileMutation::AffectedRelations() const {
  switch (kind) {
    case ProfileMutationKind::kAddSelection:
    case ProfileMutationKind::kRemoveSelection:
    case ProfileMutationKind::kUpdateSelectionDoi:
      return {condition.attr.table};
    case ProfileMutationKind::kAddJoin:
    case ProfileMutationKind::kRemoveJoin:
      if (join_from.table == join_to.table) return {join_from.table};
      return {join_from.table, join_to.table};
    case ProfileMutationKind::kSetRanking:
      return {};
  }
  return {};
}

std::string ProfileMutation::ToString() const {
  const auto name = [this] {
    switch (kind) {
      case ProfileMutationKind::kAddSelection: return "add_selection";
      case ProfileMutationKind::kRemoveSelection: return "remove_selection";
      case ProfileMutationKind::kUpdateSelectionDoi: return "update_doi";
      case ProfileMutationKind::kAddJoin: return "add_join";
      case ProfileMutationKind::kRemoveJoin: return "remove_join";
      case ProfileMutationKind::kSetRanking: return "set_ranking";
    }
    return "?";
  }();
  std::string out = "@" + std::to_string(epoch) + " " + name;
  switch (kind) {
    case ProfileMutationKind::kAddSelection:
    case ProfileMutationKind::kRemoveSelection:
    case ProfileMutationKind::kUpdateSelectionDoi:
      out += " " + condition.ToString();
      break;
    case ProfileMutationKind::kAddJoin:
    case ProfileMutationKind::kRemoveJoin:
      out += " " + join_from.ToString() + " -> " + join_to.ToString();
      break;
    case ProfileMutationKind::kSetRanking:
      break;
  }
  return out;
}

uint64_t UserProfile::NextLineage() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

ProfileMutation& UserProfile::Journal(ProfileMutationKind kind) {
  ProfileMutation entry;
  entry.kind = kind;
  entry.epoch = epoch_.load(std::memory_order_relaxed) + 1;
  journal_.push_back(std::move(entry));
  if (journal_.size() > kJournalCapacity) journal_.pop_front();
  // Publish the epoch AFTER the journal entry exists, so a reader that
  // observes the new epoch under the external mutex finds its delta.
  epoch_.store(journal_.back().epoch, std::memory_order_release);
  return journal_.back();
}

std::optional<std::vector<ProfileMutation>> UserProfile::MutationsSince(
    uint64_t since_epoch) const {
  const uint64_t current = epoch();
  if (since_epoch > current) return std::nullopt;  // different lineage
  if (since_epoch == current) return std::vector<ProfileMutation>{};
  // Epochs advance by exactly 1 per mutation, so the delta is the entries
  // with epoch in (since_epoch, current] — all of which must still be in
  // the bounded journal.
  if (journal_.empty() || journal_.front().epoch > since_epoch + 1) {
    return std::nullopt;  // journal truncated past the gap
  }
  std::vector<ProfileMutation> out;
  for (const ProfileMutation& m : journal_) {
    if (m.epoch > since_epoch) out.push_back(m);
  }
  return out;
}

Status UserProfile::AddSelection(SelectionPreference pref) {
  if (pref.doi.IsIndifferent()) {
    return Status::InvalidArgument(
        "indifferent preferences (dT = dF = 0) are not stored");
  }
  if ((pref.doi.d_true().is_elastic() || pref.doi.d_false().is_elastic()) &&
      !pref.condition.value.is_numeric()) {
    return Status::InvalidArgument(
        "elastic preference requires a numeric target value: " +
        pref.condition.ToString());
  }
  for (const auto& existing : selections_) {
    if (existing.condition == pref.condition) {
      return Status::AlreadyExists("preference on condition '" +
                                   pref.condition.ToString() +
                                   "' already stored");
    }
  }
  selections_.push_back(std::move(pref));
  Journal(ProfileMutationKind::kAddSelection).condition =
      selections_.back().condition;
  return Status::OK();
}

Status UserProfile::AddJoin(JoinPreference pref) {
  if (pref.degree < 0.0 || pref.degree > 1.0) {
    return Status::InvalidArgument("join degree must be in [0, 1]");
  }
  for (const auto& existing : joins_) {
    if (existing.from == pref.from && existing.to == pref.to) {
      return Status::AlreadyExists("join preference '" + pref.ToString() +
                                   "' already stored");
    }
  }
  joins_.push_back(std::move(pref));
  ProfileMutation& entry = Journal(ProfileMutationKind::kAddJoin);
  entry.join_from = joins_.back().from;
  entry.join_to = joins_.back().to;
  return Status::OK();
}

Status UserProfile::AddSelection(const std::string& attr, sql::BinaryOp op,
                                 Value value, DoiPair doi) {
  QP_ASSIGN_OR_RETURN(AttributeRef ref, AttributeRef::Parse(attr));
  SelectionPreference pref;
  pref.condition = {std::move(ref), op, std::move(value)};
  pref.doi = std::move(doi);
  return AddSelection(std::move(pref));
}

Status UserProfile::AddJoin(const std::string& from_attr,
                            const std::string& to_attr, double degree) {
  QP_ASSIGN_OR_RETURN(AttributeRef from, AttributeRef::Parse(from_attr));
  QP_ASSIGN_OR_RETURN(AttributeRef to, AttributeRef::Parse(to_attr));
  return AddJoin({std::move(from), std::move(to), degree});
}

Status UserProfile::RemoveSelection(const SelectionCondition& condition) {
  for (auto it = selections_.begin(); it != selections_.end(); ++it) {
    if (it->condition == condition) {
      // `condition` may alias the element being erased (callers often pass
      // selections()[i].condition); copy it before the erase shifts the
      // vector, or the journal would record a neighbouring preference.
      SelectionCondition removed = it->condition;
      selections_.erase(it);
      Journal(ProfileMutationKind::kRemoveSelection).condition =
          std::move(removed);
      return Status::OK();
    }
  }
  return Status::NotFound("no preference on condition '" +
                          condition.ToString() + "'");
}

Status UserProfile::RemoveJoin(const storage::AttributeRef& from,
                               const storage::AttributeRef& to) {
  for (auto it = joins_.begin(); it != joins_.end(); ++it) {
    if (it->from == from && it->to == to) {
      // `from`/`to` may alias the element being erased; copy first (see
      // RemoveSelection).
      storage::AttributeRef removed_from = it->from;
      storage::AttributeRef removed_to = it->to;
      joins_.erase(it);
      ProfileMutation& entry = Journal(ProfileMutationKind::kRemoveJoin);
      entry.join_from = std::move(removed_from);
      entry.join_to = std::move(removed_to);
      return Status::OK();
    }
  }
  return Status::NotFound("no join preference " + from.ToString() + " -> " +
                          to.ToString());
}

Status UserProfile::UpdateSelectionDoi(const SelectionCondition& condition,
                                       DoiPair doi) {
  if (doi.IsIndifferent()) {
    return Status::InvalidArgument(
        "indifferent preferences (dT = dF = 0) are not stored");
  }
  if ((doi.d_true().is_elastic() || doi.d_false().is_elastic()) &&
      !condition.value.is_numeric()) {
    return Status::InvalidArgument(
        "elastic preference requires a numeric target value: " +
        condition.ToString());
  }
  for (auto& pref : selections_) {
    if (pref.condition == condition) {
      pref.doi = std::move(doi);
      Journal(ProfileMutationKind::kUpdateSelectionDoi).condition = condition;
      return Status::OK();
    }
  }
  return Status::NotFound("no preference on condition '" +
                          condition.ToString() + "'");
}

std::vector<const SelectionPreference*> UserProfile::SelectionsOn(
    const std::string& relation) const {
  std::vector<const SelectionPreference*> out;
  const std::string rel = ToLower(relation);
  for (const auto& p : selections_) {
    if (p.condition.attr.table == rel) out.push_back(&p);
  }
  return out;
}

std::vector<const JoinPreference*> UserProfile::JoinsFrom(
    const std::string& relation) const {
  std::vector<const JoinPreference*> out;
  const std::string rel = ToLower(relation);
  for (const auto& p : joins_) {
    if (p.from.table == rel) out.push_back(&p);
  }
  return out;
}

Status UserProfile::Validate(const storage::Database& db) const {
  for (const auto& p : selections_) {
    QP_RETURN_IF_ERROR(db.ValidateAttribute(p.condition.attr));
    if (p.doi.d_true().is_elastic() || p.doi.d_false().is_elastic()) {
      QP_ASSIGN_OR_RETURN(storage::DataType type,
                          db.AttributeType(p.condition.attr));
      if (type != storage::DataType::kInt &&
          type != storage::DataType::kDouble) {
        return Status::InvalidArgument(
            "elastic preference on non-numeric attribute " +
            p.condition.attr.ToString());
      }
    }
  }
  for (const auto& p : joins_) {
    QP_RETURN_IF_ERROR(db.ValidateAttribute(p.from));
    QP_RETURN_IF_ERROR(db.ValidateAttribute(p.to));
  }
  return Status::OK();
}

std::string UserProfile::Serialize() const {
  std::string out;
  if (preferred_ranking_.has_value()) {
    out += "ranking: ";
    out += CombinationStyleName(preferred_ranking_->positive_style());
    out += " ";
    out += MixedStyleName(preferred_ranking_->mixed_style());
    out += "\n";
  }
  for (const auto& p : selections_) {
    out += "doi(" + p.condition.attr.ToString() + " " +
           sql::BinaryOpName(p.condition.op) + " ";
    out += p.condition.value.is_string()
               ? "'" + p.condition.value.as_string() + "'"
               : p.condition.value.ToString();
    out += ") = (" + SerializeDoiFunction(p.doi.d_true()) + ", " +
           SerializeDoiFunction(p.doi.d_false()) + ")\n";
  }
  for (const auto& p : joins_) {
    out += "doi(" + p.from.ToString() + " = " + p.to.ToString() + ") = (" +
           FormatDouble(p.degree) + ")\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Text-format parsing.
// ---------------------------------------------------------------------------

namespace {

/// Parses "TABLE.column" at the front of `s`, advancing it.
Result<AttributeRef> TakeAttribute(std::string_view* s) {
  size_t i = 0;
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  while (i < s->size() && is_ident((*s)[i])) ++i;
  if (i == s->size() || (*s)[i] != '.') {
    return Status::ParseError("expected TABLE.column in '" + std::string(*s) +
                              "'");
  }
  size_t j = i + 1;
  while (j < s->size() && is_ident((*s)[j])) ++j;
  AttributeRef ref(std::string(s->substr(0, i)),
                   std::string(s->substr(i + 1, j - i - 1)));
  s->remove_prefix(j);
  return ref;
}

Result<sql::BinaryOp> TakeOperator(std::string_view* s) {
  *s = Trim(*s);
  static const std::pair<const char*, sql::BinaryOp> kOps[] = {
      {"<>", sql::BinaryOp::kNe}, {"<=", sql::BinaryOp::kLe},
      {">=", sql::BinaryOp::kGe}, {"=", sql::BinaryOp::kEq},
      {"<", sql::BinaryOp::kLt},  {">", sql::BinaryOp::kGt},
  };
  for (const auto& [text, op] : kOps) {
    if (StartsWith(*s, text)) {
      s->remove_prefix(std::string_view(text).size());
      return op;
    }
  }
  return Status::ParseError("expected comparison operator in '" +
                            std::string(*s) + "'");
}

/// Parses one doi component: a number, or e(d)[lo,hi] / e(d)[a,b,c,d].
Result<DoiFunction> ParseDoiFunction(std::string_view text, double target) {
  text = Trim(text);
  if (text.empty()) return Status::ParseError("empty doi component");
  if (text[0] != 'e') {
    char* end = nullptr;
    const double d = std::strtod(std::string(text).c_str(), &end);
    if (end == std::string(text).c_str()) {
      return Status::ParseError("bad degree '" + std::string(text) + "'");
    }
    return DoiFunction::Constant(d);
  }
  // e(d)[...]
  const size_t open = text.find('(');
  const size_t close = text.find(')');
  const size_t bopen = text.find('[');
  const size_t bclose = text.find(']');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      bopen == std::string_view::npos || bclose == std::string_view::npos ||
      !(open < close && close < bopen && bopen < bclose)) {
    return Status::ParseError("malformed elastic doi '" + std::string(text) +
                              "'");
  }
  const double d =
      std::strtod(std::string(text.substr(open + 1, close - open - 1)).c_str(),
                  nullptr);
  std::vector<std::string> nums =
      Split(std::string(text.substr(bopen + 1, bclose - bopen - 1)), ',');
  std::vector<double> vals;
  for (const auto& n : nums) vals.push_back(std::strtod(n.c_str(), nullptr));
  if (vals.size() == 2) {
    // Triangular centered at the condition's target value; if the target is
    // not centered, fall back to an asymmetric trapezoid peaked at target.
    if (target == (vals[0] + vals[1]) / 2.0) {
      return DoiFunction::Triangular(d, target, (vals[1] - vals[0]) / 2.0);
    }
    return DoiFunction::Trapezoidal(d, vals[0], target, target, vals[1]);
  }
  if (vals.size() == 4) {
    // A degenerate symmetric core is a triangle; keep the shape tag stable
    // across serialize/parse round trips.
    if (vals[1] == vals[2] && vals[1] - vals[0] == vals[3] - vals[2] &&
        vals[1] > vals[0]) {
      return DoiFunction::Triangular(d, vals[1], vals[1] - vals[0]);
    }
    return DoiFunction::Trapezoidal(d, vals[0], vals[1], vals[2], vals[3]);
  }
  return Status::ParseError("elastic doi needs 2 or 4 interval numbers: '" +
                            std::string(text) + "'");
}

/// Splits "(a, b)" or "(a)" contents at the top-level commas (commas inside
/// e(..)[..] brackets do not count).
std::vector<std::string> SplitTopLevel(std::string_view s) {
  std::vector<std::string> parts;
  int depth = 0;
  std::string cur;
  for (char c : s) {
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

}  // namespace

std::string SerializeDoiFunction(const DoiFunction& f) {
  if (!f.is_elastic()) return FormatDouble(f.degree());
  return "e(" + FormatDouble(f.degree()) + ")[" + FormatDouble(f.support_lo()) +
         "," + FormatDouble(f.core_lo()) + "," + FormatDouble(f.core_hi()) +
         "," + FormatDouble(f.support_hi()) + "]";
}

Result<UserProfile> UserProfile::Parse(const std::string& text) {
  UserProfile profile;
  std::istringstream in(text);
  std::string raw;
  size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const auto fail = [&](const std::string& msg) {
      return Status::ParseError("profile line " + std::to_string(line_no) +
                                ": " + msg);
    };
    if (StartsWith(line, "ranking:")) {
      const auto parts = Split(std::string(Trim(line.substr(8))), ' ');
      if (parts.empty() || parts.size() > 2) {
        return fail("expected 'ranking: <style> [<mixed>]'");
      }
      auto style = ParseCombinationStyle(parts[0]);
      if (!style.ok()) return fail(style.status().message());
      MixedStyle mixed = MixedStyle::kCountWeighted;
      if (parts.size() == 2) {
        auto parsed = ParseMixedStyle(parts[1]);
        if (!parsed.ok()) return fail(parsed.status().message());
        mixed = *parsed;
      }
      profile.set_preferred_ranking(RankingFunction::Make(*style, mixed));
      continue;
    }
    if (!StartsWith(line, "doi(")) return fail("expected 'doi('");
    line.remove_prefix(4);
    // Condition up to the matching ')'.
    int depth = 1;
    size_t end = 0;
    for (; end < line.size(); ++end) {
      if (line[end] == '(') ++depth;
      if (line[end] == ')') {
        if (--depth == 0) break;
      }
    }
    if (end == line.size()) return fail("unbalanced parentheses");
    std::string_view cond = Trim(line.substr(0, end));
    std::string_view rest = Trim(line.substr(end + 1));
    if (!StartsWith(rest, "=")) return fail("expected '=' after condition");
    rest = Trim(rest.substr(1));
    if (rest.empty() || rest.front() != '(' || rest.back() != ')') {
      return fail("expected parenthesized doi");
    }
    std::vector<std::string> doi_parts =
        SplitTopLevel(rest.substr(1, rest.size() - 2));

    // Condition: attribute, operator, then either attribute (join) or
    // literal (selection).
    auto attr_result = TakeAttribute(&cond);
    if (!attr_result.ok()) return attr_result.status();
    AttributeRef left = std::move(attr_result).value();
    auto op_result = TakeOperator(&cond);
    if (!op_result.ok()) return op_result.status();
    const sql::BinaryOp op = *op_result;
    cond = Trim(cond);

    // Join: right side is TABLE.column and doi has a single component.
    std::string_view probe = cond;
    auto right_attr = TakeAttribute(&probe);
    if (right_attr.ok() && Trim(probe).empty()) {
      if (op != sql::BinaryOp::kEq) return fail("join conditions must use '='");
      if (doi_parts.size() != 1) return fail("join doi takes one degree");
      const double degree =
          std::strtod(std::string(Trim(doi_parts[0])).c_str(), nullptr);
      QP_RETURN_IF_ERROR(
          profile.AddJoin({left, std::move(right_attr).value(), degree}));
      continue;
    }

    // Selection: parse the literal.
    Value value;
    if (!cond.empty() && cond.front() == '\'') {
      if (cond.size() < 2 || cond.back() != '\'') {
        return fail("unterminated string literal");
      }
      value = Value(std::string(cond.substr(1, cond.size() - 2)));
    } else {
      char* endp = nullptr;
      const std::string num(cond);
      const double x = std::strtod(num.c_str(), &endp);
      if (endp == num.c_str() || *endp != '\0') {
        return fail("bad literal '" + num + "'");
      }
      if (num.find('.') == std::string::npos &&
          num.find('e') == std::string::npos) {
        value = Value(static_cast<int64_t>(x));
      } else {
        value = Value(x);
      }
    }
    if (doi_parts.size() != 2) return fail("selection doi takes (dT, dF)");
    const double target = value.is_numeric() ? value.ToNumeric() : 0.0;
    auto dt = ParseDoiFunction(doi_parts[0], target);
    if (!dt.ok()) return fail(dt.status().message());
    auto df = ParseDoiFunction(doi_parts[1], target);
    if (!df.ok()) return fail(df.status().message());
    auto pair = DoiPair::Make(std::move(dt).value(), std::move(df).value());
    if (!pair.ok()) return fail(pair.status().message());
    SelectionPreference pref;
    pref.condition = {std::move(left), op, std::move(value)};
    pref.doi = std::move(pair).value();
    QP_RETURN_IF_ERROR(profile.AddSelection(std::move(pref)));
  }
  return profile;
}

Status UserProfile::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  out << Serialize();
  return out ? Status::OK() : Status::Internal("error writing '" + path + "'");
}

Result<UserProfile> UserProfile::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return Parse(ss.str());
}

}  // namespace qp::core
