// Ranking functions for combinations of preferences (Section 3.3).
//
// Positive combinations (all preferences satisfied, degrees >= 0):
//   inflationary  r1+ = 1 - prod(1 - di)            (Eq. 1; r1+ >= max)
//   dominant      r+  = max(di)                     (winner-takes-all)
//   reserved      r2+ = 1 - prod(1 - di)^(1/N)      (Eq. 2; min<=r2+<=max)
// Negative combinations are the exact mirror images (signs exchanged).
// Mixed combinations compose r+ over the satisfied set and r- over the
// failed set:
//   sum            r = r+ + r-                      (Eq. 5)
//   count-weighted r = (N+ r+ + N- r-) / (N+ + N-)  (Eq. 6)
// Both satisfy conditions (3) r- <= r <= r+ and (4) r(d, -d) = 0.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace qp::core {

/// Philosophy for combining same-sign degrees.
enum class CombinationStyle {
  kInflationary,
  kDominant,
  kReserved,
};

/// Composition of positive and negative parts.
enum class MixedStyle {
  kSum,            ///< Eq. 5: r+ + r-.
  kCountWeighted,  ///< Eq. 6: (N+ r+ + N- r-) / (N+ + N-).
};

const char* CombinationStyleName(CombinationStyle s);
const char* MixedStyleName(MixedStyle s);

/// Inverse of the Name functions (case-insensitive); NotFound on unknown
/// names. Used by the profile text format's `ranking:` line.
Result<CombinationStyle> ParseCombinationStyle(const std::string& name);
Result<MixedStyle> ParseMixedStyle(const std::string& name);

/// Combines non-negative satisfaction degrees; empty input yields 0.
double CombinePositive(CombinationStyle style,
                       const std::vector<double>& degrees);

/// Combines non-positive failure degrees; empty input yields 0.
double CombineNegative(CombinationStyle style,
                       const std::vector<double>& degrees);

/// \brief A fully configured ranking function r(D+, D-).
///
/// `positive`/`negative` pick the same-sign philosophy, `mixed` how the two
/// parts compose. The paper's experiments (Figs. 15-17) vary `positive`
/// with mixed = kCountWeighted.
class RankingFunction {
 public:
  RankingFunction() = default;
  RankingFunction(CombinationStyle positive, CombinationStyle negative,
                  MixedStyle mixed)
      : positive_(positive), negative_(negative), mixed_(mixed) {}

  /// Shorthand: same style on both signs.
  static RankingFunction Make(CombinationStyle style,
                              MixedStyle mixed = MixedStyle::kCountWeighted) {
    return RankingFunction(style, style, mixed);
  }

  CombinationStyle positive_style() const { return positive_; }
  CombinationStyle negative_style() const { return negative_; }
  MixedStyle mixed_style() const { return mixed_; }

  /// Overall degree of interest for satisfied degrees `positive` (each >= 0)
  /// and failed degrees `negative` (each <= 0). Either set may be empty.
  double Rank(const std::vector<double>& positive,
              const std::vector<double>& negative) const;

  /// Positive-only shorthand.
  double RankPositive(const std::vector<double>& degrees) const {
    return CombinePositive(positive_, degrees);
  }

  std::string ToString() const;

 private:
  CombinationStyle positive_ = CombinationStyle::kInflationary;
  CombinationStyle negative_ = CombinationStyle::kInflationary;
  MixedStyle mixed_ = MixedStyle::kCountWeighted;
};

}  // namespace qp::core
