#include "core/learn_ranking.h"

#include <algorithm>
#include <cmath>

namespace qp::core {

Status RankingFunctionLearner::AddFeedback(RankingFeedback feedback) {
  for (double d : feedback.satisfied_degrees) {
    if (d < 0.0 || d > 1.0) {
      return Status::InvalidArgument("satisfied degree outside [0, 1]");
    }
  }
  for (double d : feedback.failed_degrees) {
    if (d < -1.0 || d > 0.0) {
      return Status::InvalidArgument("failed degree outside [-1, 0]");
    }
  }
  if (feedback.reported_interest < -1.0 || feedback.reported_interest > 1.0) {
    return Status::InvalidArgument("reported interest outside [-1, 1]");
  }
  feedback_.push_back(std::move(feedback));
  return Status::OK();
}

Status RankingFunctionLearner::AddFeedback(const PersonalizedTuple& tuple,
                                           double reported_score) {
  RankingFeedback feedback;
  for (const auto& o : tuple.satisfied) {
    feedback.satisfied_degrees.push_back(std::clamp(o.degree, 0.0, 1.0));
  }
  for (const auto& o : tuple.failed) {
    feedback.failed_degrees.push_back(std::clamp(o.degree, -1.0, 0.0));
  }
  feedback.reported_interest = std::clamp(reported_score / 10.0, -1.0, 1.0);
  return AddFeedback(std::move(feedback));
}

Result<std::vector<RankingFunctionLearner::Fit>>
RankingFunctionLearner::Evaluate() const {
  if (feedback_.empty()) {
    return Status::NotFound("no feedback collected");
  }
  std::vector<Fit> fits;
  for (auto style : {CombinationStyle::kInflationary,
                     CombinationStyle::kDominant,
                     CombinationStyle::kReserved}) {
    for (auto mixed : {MixedStyle::kSum, MixedStyle::kCountWeighted}) {
      const RankingFunction ranking(style, style, mixed);
      double error = 0.0;
      for (const auto& f : feedback_) {
        const double predicted =
            ranking.Rank(f.satisfied_degrees, f.failed_degrees);
        error += std::fabs(predicted - f.reported_interest);
      }
      fits.push_back({style, mixed, error / feedback_.size()});
    }
  }
  std::stable_sort(fits.begin(), fits.end(), [](const Fit& a, const Fit& b) {
    return a.mean_abs_error < b.mean_abs_error;
  });
  return fits;
}

Result<RankingFunction> RankingFunctionLearner::Best() const {
  QP_ASSIGN_OR_RETURN(std::vector<Fit> fits, Evaluate());
  return RankingFunction(fits[0].style, fits[0].style, fits[0].mixed);
}

}  // namespace qp::core
