// The personalization pipeline, decomposed into its cacheable stages.
//
// There is exactly one implementation of each stage — option resolution,
// preference selection, selection validation, integration planning, plan
// execution and answer finalization — and both front doors are assembled
// from them: the cold path (core::Personalizer) runs every stage per call,
// while the warm path (serve::Session) caches the intermediate artifacts
// (selected-preference sets, integration plans) keyed by profile/stats
// epochs and skips the stages whose inputs haven't changed. Because a cache
// hit re-enters the SAME execution code a cold run would use, warm answers
// are byte-identical to cold ones by construction (see SameAnswerPayload).
//
// This header also owns PersonalizeOptions so both layers can share it
// without a dependency cycle; personalizer.h re-exports it.

#pragma once

#include <optional>
#include <string>

#include "common/status.h"
#include "core/answer.h"
#include "core/descriptor.h"
#include "core/graph.h"
#include "core/ppa.h"
#include "core/profile.h"
#include "core/select_top_k.h"
#include "core/spa.h"
#include "stats/table_stats.h"

namespace qp::core {

/// Which answer-generation algorithm to run.
enum class AnswerAlgorithm {
  kSpa,
  kPpa,
};

/// Which preference-selection algorithm to run.
enum class SelectionAlgorithm {
  kFakeCrit,
  kSps,
};

/// \brief Everything configurable about one personalization call.
struct PersonalizeOptions {
  /// Number of top preferences to select (0 = all related preferences).
  size_t k = 10;
  /// Minimum preferences a tuple must satisfy (L <= K).
  size_t l = 1;
  /// Criticality threshold c0 (alternative/additional criterion to k).
  double min_criticality = 0.0;
  /// Instead of k / min_criticality, select preferences until results are
  /// guaranteed at least this doi (Section 4.2). Disabled when unset.
  std::optional<double> target_doi;
  /// Qualitative descriptor for the desired results ("best", "good", ...;
  /// Section 2): preferences are selected with the interval's lower bound
  /// as the doi target and answer tuples are filtered to the interval.
  /// Looked up in `descriptors` (the default registry when null).
  std::optional<std::string> descriptor;
  const DescriptorRegistry* descriptors = nullptr;
  /// Use the profile's stored ranking philosophy (Section 6.3) instead of
  /// `ranking` when the profile has one.
  bool use_profile_ranking = false;
  /// Return only the best `top_n` tuples (0 = all). PPA stops its remaining
  /// queries and probes as soon as the top-N have been safely emitted.
  size_t top_n = 0;
  /// Unified execution options for answer generation: morsel-driven
  /// execution of SPA's integrated query, and of PPA's S/A queries plus its
  /// batched point probes. A serving layer injects its shared ThreadPool
  /// through `exec.pool`. Results and emission order are identical at every
  /// parallelism; the default runs fully serial.
  exec::ExecOptions exec;
  /// Optional per-call trace sink. Each pipeline stage (graph/selection,
  /// planning, execution) records a span under it; the execution span nests
  /// the algorithm's own spans (PPA S/A query rounds + "first_response",
  /// SPA union branches). Everything except the wall times is deterministic
  /// across thread counts. Not owned; must not be shared with a concurrent
  /// call.
  obs::TraceSpan* trace = nullptr;
  /// Optional cooperative cancellation / deadline token (not owned), polled
  /// inside answer generation. For PPA a fired token cuts generation at the
  /// next S/A round boundary and the call still SUCCEEDS, returning the
  /// progressive prefix with stats.partial = true (see
  /// PpaGenerator::Options::cancel for the determinism contract). SPA has
  /// no prefix to salvage: its single integrated query aborts and the call
  /// fails with kDeadlineExceeded / kCancelled.
  const common::CancelToken* cancel = nullptr;
  /// \deprecated Alias for exec.num_threads, honored only while
  /// exec.num_threads is left at its default of 1. Kept for one release and
  /// read nowhere but EffectiveExec(); use `exec` instead.
  size_t num_threads = 1;

  SelectionAlgorithm selection = SelectionAlgorithm::kFakeCrit;
  AnswerAlgorithm algorithm = AnswerAlgorithm::kPpa;
  RankingFunction ranking =
      RankingFunction::Make(CombinationStyle::kInflationary);
  /// Progressive emission callback (PPA only).
  std::function<void(const PersonalizedTuple&)> on_emit;

  /// The execution options actually applied: `exec` with the deprecated
  /// num_threads alias folded in.
  exec::ExecOptions EffectiveExec() const {
    exec::ExecOptions e = exec;
    if (e.num_threads == 1 && num_threads > 1) e.num_threads = num_threads;
    return e;
  }
};

/// The per-call bindings derived from options + profile: the effective
/// ranking function (profile override) and, when a descriptor is set, the
/// target doi interval.
struct ResolvedPersonalization {
  RankingFunction ranking;
  std::optional<DoiInterval> interval;
};

/// Stage 0 — resolve the options against the profile. Fails with
/// kInvalidArgument when the descriptor is unknown.
Result<ResolvedPersonalization> ResolvePersonalization(
    const PersonalizeOptions& options, const UserProfile& profile);

/// Stage 1 — preference selection: the top-K (or doi-targeted) preferences
/// the options select for `query` from `graph`.
Result<std::vector<SelectedPreference>> RunSelection(
    const PersonalizationGraph& graph, const sql::SelectQuery& query,
    const PersonalizeOptions& options,
    const ResolvedPersonalization& resolved);

/// Stage 1b — checks a selection can produce an answer: kNotFound when
/// nothing relates to the query, kInvalidQuery when L exceeds the selected
/// count (a caller bug: retrying with the same inputs cannot succeed).
Status ValidateSelection(const std::vector<SelectedPreference>& preferences,
                         const PersonalizeOptions& options);

/// Stage 2's artifact — one algorithm's prepared integration plan. Holds
/// whichever of the two plans the options' algorithm selects; immutable and
/// safe to share across threads once built.
struct IntegrationPlan {
  AnswerAlgorithm algorithm = AnswerAlgorithm::kPpa;
  SpaGenerator::Plan spa;  ///< set when algorithm == kSpa
  PpaGenerator::Plan ppa;  ///< set when algorithm == kPpa
};

/// Stage 2 — preference integration: builds the plan without executing any
/// query. `stats` orders PPA's query sets (nullable: arbitrary order).
Result<IntegrationPlan> BuildIntegrationPlan(
    const storage::Database* db, stats::StatsManager* stats,
    const sql::SelectQuery& query,
    const std::vector<SelectedPreference>& preferences,
    const PersonalizeOptions& options);

/// Stage 3 — answer generation: executes a prepared plan. Applies the
/// ranking from `resolved` and the options' top-N bound.
Result<PersonalizedAnswer> ExecuteIntegrationPlan(
    const storage::Database* db, const IntegrationPlan& plan,
    const PersonalizeOptions& options,
    const ResolvedPersonalization& resolved);

/// Stage 4 — stamps the selection time and applies the descriptor's doi
/// interval filter.
void FinalizeAnswer(const ResolvedPersonalization& resolved,
                    double selection_seconds, PersonalizedAnswer& answer);

/// Parses `sql` and requires a single SELECT block (kInvalidQuery
/// otherwise) — the shared front-door parse of Personalizer and serve.
Result<sql::SelectQuery> ParseSingleSelect(const std::string& sql);

}  // namespace qp::core
