// Higher-level preference models (Sections 3 and 7): "User preferences may
// be articulated over a higher level graph model representing the data
// other than the database schema. This is a useful abstraction for using a
// profile over multiple databases with similar information but possibly
// different schemas... In ongoing work, we see how preferences expressed
// over a higher level model may be transparently mapped to the database
// schema."
//
// A SchemaMapping translates logical relation/attribute names (the higher-
// level model a profile is written against) to physical ones, so one stored
// profile personalizes queries over differently named schemas.

#pragma once

#include <map>
#include <string>

#include "common/status.h"
#include "core/profile.h"

namespace qp::core {

/// \brief Logical-to-physical name mapping for relations and attributes.
class SchemaMapping {
 public:
  SchemaMapping() = default;

  /// Maps logical relation `logical` to physical relation `physical`
  /// (attributes keep their names unless individually mapped).
  Status MapRelation(const std::string& logical, const std::string& physical);

  /// Maps a single attribute, e.g. "film.runtime" -> "movie.duration".
  /// Overrides any relation-level mapping for that attribute.
  Status MapAttribute(const std::string& logical, const std::string& physical);

  /// Resolves a logical attribute reference. Unmapped names pass through
  /// unchanged, so a mapping only needs to cover what differs.
  storage::AttributeRef Resolve(const storage::AttributeRef& logical) const;

  /// Rewrites an entire profile from logical to physical names; the result
  /// should Validate() against the physical database.
  Result<UserProfile> Apply(const UserProfile& logical_profile) const;

  /// Parses the text form (one mapping per line, '#' comments):
  ///   film            -> movie
  ///   film.runtime    -> movie.duration
  static Result<SchemaMapping> Parse(const std::string& text);

  /// Renders the text form.
  std::string Serialize() const;

  size_t NumRelationMappings() const { return relations_.size(); }
  size_t NumAttributeMappings() const { return attributes_.size(); }

 private:
  std::map<std::string, std::string> relations_;
  std::map<std::string, storage::AttributeRef> attributes_;
};

}  // namespace qp::core
