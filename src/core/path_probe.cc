#include "core/path_probe.h"

#include <algorithm>

#include "index/catalog.h"

namespace qp::core {

using storage::Row;
using storage::Table;
using storage::Value;

Result<PathWalk> PathWalk::Prepare(const storage::Database* db,
                                   const ImplicitPreference& pref) {
  PathWalk walk;
  QP_ASSIGN_OR_RETURN(const Table* anchor,
                      db->GetTable(pref.AnchorRelation()));
  const auto& pk = anchor->schema().primary_key();
  if (pk.size() != 1) {
    return Status::InvalidArgument("probe anchor '" + pref.AnchorRelation() +
                                   "' needs a single-column primary key");
  }
  QP_ASSIGN_OR_RETURN(size_t anchor_pk_col,
                      anchor->schema().ColumnIndex(pk[0]));
  walk.anchor_.table = anchor;
  walk.anchor_.col = anchor_pk_col;
  walk.anchor_.snapshot = db->indexes().Hash(anchor, anchor_pk_col);
  walk.signature_ = pref.AnchorRelation();

  const Table* current = anchor;
  for (const JoinPreference& join : pref.joins()) {
    Hop hop;
    QP_ASSIGN_OR_RETURN(hop.from_col,
                        current->schema().ColumnIndex(join.from.column));
    QP_ASSIGN_OR_RETURN(const Table* target, db->GetTable(join.to.table));
    hop.to.table = target;
    QP_ASSIGN_OR_RETURN(hop.to.col,
                        target->schema().ColumnIndex(join.to.column));
    hop.to.snapshot = db->indexes().Hash(target, hop.to.col);
    walk.hops_.push_back(std::move(hop));
    current = target;
    walk.signature_ +=
        "|" + join.from.ToString() + "=" + join.to.ToString();
  }
  return walk;
}

size_t PathWalk::Matches(const Binding& b, const Value& key,
                         std::vector<const Row*>* out) {
  if (b.snapshot != nullptr) {
    const std::vector<size_t>* positions = b.snapshot->Lookup(key);
    if (positions == nullptr) return 0;
    for (size_t pos : *positions) out->push_back(&b.table->row(pos));
    return positions->size();
  }
  if (key.is_null()) return 0;
  const size_t num_rows = b.table->num_rows();
  for (size_t i = 0; i < num_rows; ++i) {
    if (b.table->row(i)[b.col] == key) out->push_back(&b.table->row(i));
  }
  return num_rows;
}

size_t PathWalk::Frontier(const Value& anchor_key,
                          std::vector<const Row*>* out) const {
  out->clear();
  size_t examined = Matches(anchor_, anchor_key, out);
  std::vector<const Row*> next;
  for (const Hop& hop : hops_) {
    if (out->empty()) return examined;
    next.clear();
    for (const Row* row : *out) {
      const Value& key = (*row)[hop.from_col];
      if (key.is_null()) continue;
      examined += Matches(hop.to, key, &next);
    }
    out->swap(next);
  }
  return examined;
}

Result<PathCondition> PathCondition::Prepare(const storage::Database* db,
                                             const ImplicitPreference& pref) {
  if (!pref.has_selection()) {
    return Status::InvalidArgument("path probes require a selection path");
  }
  const SelectionPreference& sel = pref.selection();
  QP_ASSIGN_OR_RETURN(const Table* target,
                      db->GetTable(sel.condition.attr.table));
  PathCondition cond;
  QP_ASSIGN_OR_RETURN(cond.condition_col_,
                      target->schema().ColumnIndex(sel.condition.attr.column));
  cond.op_ = sel.condition.op;
  cond.value_ = sel.condition.value;
  cond.join_product_ = pref.JoinDegreeProduct();
  cond.d_true_ = sel.doi.d_true();
  const DoiFunction* elastic = nullptr;
  if (sel.doi.d_true().is_elastic()) {
    elastic = &sel.doi.d_true();
  } else if (sel.doi.d_false().is_elastic()) {
    elastic = &sel.doi.d_false();
  }
  if (elastic != nullptr) {
    cond.elastic_ = true;
    cond.support_lo_ = elastic->support_lo();
    cond.support_hi_ = elastic->support_hi();
  }
  return cond;
}

std::optional<double> PathCondition::TruthDegree(
    const std::vector<const Row*>& frontier) const {
  std::optional<double> best;
  for (const Row* row : frontier) {
    const Value& u = (*row)[condition_col_];
    if (u.is_null()) continue;
    bool truth;
    if (elastic_) {
      if (!u.is_numeric()) continue;
      const double x = u.ToNumeric();
      truth = x >= support_lo_ && x <= support_hi_;
    } else {
      const int cmp = u.Compare(value_);
      switch (op_) {
        case sql::BinaryOp::kEq: truth = cmp == 0; break;
        case sql::BinaryOp::kNe: truth = cmp != 0; break;
        case sql::BinaryOp::kLt: truth = cmp < 0; break;
        case sql::BinaryOp::kLe: truth = cmp <= 0; break;
        case sql::BinaryOp::kGt: truth = cmp > 0; break;
        case sql::BinaryOp::kGe: truth = cmp >= 0; break;
        default: truth = false; break;
      }
    }
    if (!truth) continue;
    const double degree = join_product_ * d_true_.Eval(u);
    if (!best.has_value() || degree > *best) best = degree;
  }
  return best;
}

Result<PathProbe> PathProbe::Prepare(const storage::Database* db,
                                     const ImplicitPreference& pref) {
  PathProbe probe;
  QP_ASSIGN_OR_RETURN(probe.walk_, PathWalk::Prepare(db, pref));
  QP_ASSIGN_OR_RETURN(probe.condition_, PathCondition::Prepare(db, pref));
  return probe;
}

std::optional<double> PathProbe::TruthDegree(const Value& anchor_key) const {
  std::vector<const Row*> frontier;
  walk_.Frontier(anchor_key, &frontier);
  return condition_.TruthDegree(frontier);
}

}  // namespace qp::core
