// Deterministic pseudo-random generation used by the data/profile generators
// and the simulated-user harness. All experiment code seeds explicitly so
// benchmark rows are reproducible run-to-run.

#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace qp {

/// \brief Seeded random source with the distributions the generators need.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Gaussian draw.
  double Gaussian(double mean, double stddev);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Returns a random element index of a container of size n (n > 0).
  size_t Index(size_t n) {
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Fisher-Yates shuffles indices [0, n) and returns them.
  std::vector<size_t> Permutation(size_t n);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// \brief Zipf(s) sampler over ranks 1..n. Rank 1 is the most frequent.
///
/// Uses the classic inverse-CDF method over precomputed cumulative weights;
/// O(log n) per sample.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double s);

  /// Samples a rank in [1, n].
  size_t Sample(Rng& rng) const;

  size_t n() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
};

}  // namespace qp
