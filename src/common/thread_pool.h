// Reusable worker pool for morsel-driven parallel execution.
//
// Design goals, in order:
//   1. Determinism at the call sites: the pool never decides *what* the
//      result is, only *when* each morsel runs. Callers split work into
//      index-ordered tasks (see MorselRanges) and merge outputs in task
//      order, so results are identical for every worker count — including
//      zero workers, where everything runs inline on the caller.
//   2. No deadlocks under nesting: the thread that calls RunAll/ParallelFor
//      participates in its own batch, so a worker may itself fan out a
//      nested batch and always makes progress even when every other worker
//      is busy. This is the "caller helps" half of work stealing; idle
//      workers take tasks from whichever batch is at the front of the queue.
//   3. Exact exception propagation: the lowest-index failing task wins,
//      which matches what a serial loop over the same tasks would report.
//
// A pool with W workers gives W+1-way parallelism (workers + caller), so
// code exposing a `num_threads` knob should construct ThreadPool with
// `num_threads - 1`.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/profiled_mutex.h"

namespace qp::common {

/// Splits [0, n) into at most `max_chunks` contiguous ranges of roughly
/// equal size, none smaller than `min_per_chunk` (except that a single
/// chunk covers any n > 0). Returns an empty vector for n == 0. The split
/// depends only on the arguments, never on scheduling, so callers can merge
/// per-chunk outputs in chunk order and obtain run-to-run identical results.
std::vector<std::pair<size_t, size_t>> MorselRanges(size_t n,
                                                    size_t min_per_chunk,
                                                    size_t max_chunks);

/// \brief Fixed-size worker pool with caller participation.
class ThreadPool {
 public:
  /// Spawns exactly `workers` threads. Zero is valid: every RunAll /
  /// ParallelFor then executes inline on the calling thread. `site_name`
  /// names the queue mutex's contention site (common::ContentionRegistry)
  /// so distinct pools — the serving morsel pool vs. the introspection
  /// server's — are attributable separately in /contentionz.
  explicit ThreadPool(size_t workers, const char* site_name = "thread_pool");

  /// Drains: every task already submitted (including fire-and-forget
  /// Submit work) runs to completion before the destructor returns.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t workers() const { return threads_.size(); }

  /// Fire-and-forget. Exceptions thrown by `fn` are swallowed (there is no
  /// caller left to rethrow to); use RunAll when failures matter.
  void Submit(std::function<void()> fn);

  /// Runs every task and returns when all are done. The calling thread
  /// claims tasks alongside the workers. If any task throws, the exception
  /// from the lowest task index is rethrown after the batch completes
  /// (every task still runs — no cancellation).
  void RunAll(std::vector<std::function<void()>> tasks);

  /// Morsel loop: splits [begin, end) with MorselRanges(n, grain,
  /// 4 * (workers + 1)) and invokes body(lo, hi) per morsel, possibly
  /// concurrently. Safe to call from inside a task (nested parallelism).
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& body);

 private:
  struct Batch;

  void WorkerLoop();

  std::vector<std::thread> threads_;
  /// Contention-profiled queue mutex (the qp_prof_lock_* site named by the
  /// constructor); the CV must be condition_variable_any to wait on it.
  ProfiledMutex mu_;
  std::condition_variable_any work_cv_;
  std::deque<std::shared_ptr<Batch>> queue_;
  bool stopping_ = false;
};

}  // namespace qp::common
