#include "common/thread_pool.h"

#include <algorithm>

namespace qp::common {

std::vector<std::pair<size_t, size_t>> MorselRanges(size_t n,
                                                    size_t min_per_chunk,
                                                    size_t max_chunks) {
  std::vector<std::pair<size_t, size_t>> out;
  if (n == 0) return out;
  if (min_per_chunk == 0) min_per_chunk = 1;
  if (max_chunks == 0) max_chunks = 1;
  const size_t chunks =
      std::min(max_chunks, std::max<size_t>(1, n / min_per_chunk));
  const size_t base = n / chunks;
  const size_t extra = n % chunks;
  out.reserve(chunks);
  size_t pos = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t len = base + (c < extra ? 1 : 0);
    out.emplace_back(pos, pos + len);
    pos += len;
  }
  return out;
}

/// One RunAll invocation: a task list plus completion/error state. Tasks are
/// claimed by atomically bumping `next`; whoever claims a task runs it.
struct ThreadPool::Batch {
  std::vector<std::function<void()>> tasks;
  std::atomic<size_t> next{0};

  std::mutex m;
  std::condition_variable done_cv;
  size_t unfinished = 0;
  std::exception_ptr error;
  size_t error_index = SIZE_MAX;

  /// Claims and runs one task. Returns false when none were left to claim.
  bool RunOne() {
    const size_t i = next.fetch_add(1, std::memory_order_relaxed);
    if (i >= tasks.size()) return false;
    std::exception_ptr err;
    try {
      tasks[i]();
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(m);
    if (err != nullptr && i < error_index) {
      error = err;
      error_index = i;
    }
    if (--unfinished == 0) done_cv.notify_all();
    return true;
  }

  bool Exhausted() const {
    return next.load(std::memory_order_relaxed) >= tasks.size();
  }
};

ThreadPool::ThreadPool(size_t workers, const char* site_name)
    : mu_(site_name) {
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<ProfiledMutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
  // With zero workers, Submit()ed work may still be queued: honor the
  // drain contract on the destroying thread.
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::lock_guard<ProfiledMutex> lock(mu_);
      while (!queue_.empty() && queue_.front()->Exhausted()) {
        queue_.pop_front();
      }
      if (queue_.empty()) break;
      batch = queue_.front();
    }
    batch->RunOne();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<ProfiledMutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      while (!queue_.empty() && queue_.front()->Exhausted()) {
        queue_.pop_front();
      }
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      batch = queue_.front();
    }
    batch->RunOne();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  auto batch = std::make_shared<Batch>();
  batch->tasks.push_back(std::move(fn));
  batch->unfinished = 1;
  {
    std::lock_guard<ProfiledMutex> lock(mu_);
    queue_.push_back(std::move(batch));
  }
  work_cv_.notify_one();
}

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  auto batch = std::make_shared<Batch>();
  batch->tasks = std::move(tasks);
  batch->unfinished = batch->tasks.size();
  if (!threads_.empty() && batch->tasks.size() > 1) {
    {
      std::lock_guard<ProfiledMutex> lock(mu_);
      queue_.push_back(batch);
    }
    work_cv_.notify_all();
  }
  // Participate until nothing is left to claim, then wait for stragglers
  // other threads are still running.
  while (batch->RunOne()) {
  }
  {
    std::unique_lock<std::mutex> lock(batch->m);
    batch->done_cv.wait(lock, [&] { return batch->unfinished == 0; });
  }
  if (batch->error != nullptr) std::rethrow_exception(batch->error);
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& body) {
  if (end <= begin) return;
  const auto ranges =
      MorselRanges(end - begin, grain, 4 * (threads_.size() + 1));
  if (ranges.size() == 1) {
    body(begin, end);
    return;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(ranges.size());
  for (const auto& [lo, hi] : ranges) {
    tasks.emplace_back(
        [&body, begin, lo = lo, hi = hi] { body(begin + lo, begin + hi); });
  }
  RunAll(std::move(tasks));
}

}  // namespace qp::common
