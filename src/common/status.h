// Status / Result error-handling primitives, following the RocksDB/Arrow
// idiom: library code reports recoverable failures through return values
// rather than exceptions.

#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace qp {

/// Machine-readable classification of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  /// The query (or its combination with the personalization options) is not
  /// a valid personalization target: not a single SELECT, projects reserved
  /// columns, L exceeds the selected preferences, ...
  kInvalidQuery,
  /// A stored profile failed validation against the database schema.
  kProfileValidation,
  /// The engine failed while executing a (sub)query — data-dependent
  /// runtime failures, as opposed to statically invalid plans.
  kExecution,
  /// The request is valid but outside the supported subset (e.g. PPA over a
  /// relation without a single-column primary key).
  kUnsupported,
  /// The serving layer refused admission: every queue slot for the target
  /// shard is taken. Retryable — back off and resubmit; the scheduler
  /// itself never retries admission (that would amplify the overload).
  kOverloaded,
  /// The request's deadline passed before (or while) it executed. PPA
  /// converts an expiring deadline into a partial answer instead whenever a
  /// progressive prefix exists; this code surfaces when it cannot.
  kDeadlineExceeded,
  /// The caller cooperatively cancelled the request (CancelToken). Not
  /// retryable: the caller asked for the work to stop.
  kCancelled,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// True for failures a serving layer may transparently retry (engine-side /
/// transient: kExecution, kInternal) or a *client* may retry after backing
/// off (kOverloaded — the scheduler never retries its own admission
/// rejections); false for caller bugs (bad query, options or profile) where
/// a retry would deterministically fail again, and for kDeadlineExceeded /
/// kCancelled, where the caller asked for the work to stop. OK is not
/// retryable. This is the contract qp::serve uses to map failures without
/// string-matching messages.
bool IsRetryable(StatusCode code);

/// True for the two cooperative-interruption codes (kDeadlineExceeded,
/// kCancelled): "the work was stopped", as opposed to "the work failed".
/// PPA uses this to convert a mid-round interruption into a partial answer
/// instead of an error.
bool IsCancellation(StatusCode code);

/// Process-wide hook invoked every time a non-OK Status is ORIGINATED (the
/// code+message constructor; copies and moves do not re-fire). This is the
/// dependency-inversion seam that lets obs::FlightRecorder capture every
/// error in the system without common depending on obs. The listener must
/// be cheap, reentrancy-safe and must not construct error Statuses itself.
/// Installation is atomic; pass nullptr to uninstall. Returns the previous
/// listener so wrappers can chain or restore it.
using StatusListener = void (*)(StatusCode code, const std::string& message);
StatusListener SetStatusListener(StatusListener listener);
/// Invokes the installed listener, if any, for a non-OK origination.
/// Called by the Status constructor; exposed for tests.
void NotifyStatusListener(StatusCode code, const std::string& message);

/// \brief Outcome of an operation that can fail without a payload.
///
/// A Status is cheap to copy in the OK case (no message allocation) and
/// carries a code plus a free-form message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    if (code_ != StatusCode::kOk) NotifyStatusListener(code_, message_);
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status InvalidQuery(std::string msg) {
    return Status(StatusCode::kInvalidQuery, std::move(msg));
  }
  static Status ProfileValidation(std::string msg) {
    return Status(StatusCode::kProfileValidation, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecution, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  /// See qp::IsRetryable(StatusCode).
  bool IsRetryable() const { return ::qp::IsRetryable(code_); }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Outcome of an operation producing a value of type T on success.
///
/// Result<T> holds either a T or a non-OK Status. Accessing the value of a
/// failed Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit conversion from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }

  /// The failure status; Status::OK() when the result holds a value.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` if this Result failed.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace qp

/// Propagates a non-OK Status from the current function.
#define QP_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::qp::Status _qp_status = (expr);            \
    if (!_qp_status.ok()) return _qp_status;     \
  } while (0)

#define QP_CONCAT_IMPL(a, b) a##b
#define QP_CONCAT(a, b) QP_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on failure returns the error Status from the current function.
#define QP_ASSIGN_OR_RETURN(lhs, expr)                       \
  auto QP_CONCAT(_qp_result_, __LINE__) = (expr);            \
  if (!QP_CONCAT(_qp_result_, __LINE__).ok())                \
    return QP_CONCAT(_qp_result_, __LINE__).status();        \
  lhs = std::move(QP_CONCAT(_qp_result_, __LINE__)).value()
