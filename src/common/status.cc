#include "common/status.h"

#include <atomic>

namespace qp {

namespace {
std::atomic<StatusListener> g_status_listener{nullptr};
}  // namespace

StatusListener SetStatusListener(StatusListener listener) {
  return g_status_listener.exchange(listener, std::memory_order_acq_rel);
}

void NotifyStatusListener(StatusCode code, const std::string& message) {
  StatusListener listener =
      g_status_listener.load(std::memory_order_acquire);
  if (listener != nullptr) listener(code, message);
}

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInvalidQuery:
      return "InvalidQuery";
    case StatusCode::kProfileValidation:
      return "ProfileValidation";
    case StatusCode::kExecution:
      return "Execution";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

bool IsRetryable(StatusCode code) {
  return code == StatusCode::kExecution || code == StatusCode::kInternal ||
         code == StatusCode::kOverloaded;
}

bool IsCancellation(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kCancelled;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace qp
