// Cooperative cancellation for long-running work: a CancelToken carries a
// manual cancel flag, an optional absolute deadline, and an optional forced
// cut round. Producers (the request scheduler, a caller's Ctrl-C handler)
// set it; consumers (the executor at morsel boundaries, PPA between its
// S/A query rounds) poll it and unwind with kCancelled / kDeadlineExceeded.
//
// Determinism: deadline- and flag-based cancellation is inherently
// timing-dependent, so it only ever produces an *error* (or, for PPA, a
// prefix answer whose cut round is reported). The forced-cut-round hook
// makes the PPA cut point an explicit input instead: CutAtRound(r) returns
// true for every round >= the forced round regardless of wall time, which
// is how the deadline tests replay "the deadline fired at round r" byte-
// identically at every thread count.
//
// Thread safety: all fields are atomics; any thread may set or poll a token
// concurrently. Tokens are usually owned by the request handle and outlive
// the work they cancel.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "common/status.h"

namespace qp::common {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cooperative cancellation; consumers observe it at their next
  /// checkpoint. Irrevocable.
  void RequestCancel() { cancelled_.store(true, std::memory_order_release); }

  /// Sets the absolute deadline; work observing a later now() unwinds with
  /// kDeadlineExceeded (or cuts, for PPA).
  void SetDeadline(Clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_release);
  }
  /// Convenience: deadline `seconds` from now (non-positive = already due).
  void SetDeadlineAfter(double seconds) {
    SetDeadline(Clock::now() + std::chrono::nanoseconds(static_cast<int64_t>(
                                   seconds * 1e9)));
  }
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_acquire) != kNoDeadline;
  }

  /// Deterministic test/replay hook: PPA cuts exactly before its `round`-th
  /// S/A round (0 cuts before any work; >= the plan's round count never
  /// cuts). Unlike the deadline this is byte-deterministic at every thread
  /// count.
  void ForceCutAtRound(size_t round) {
    forced_cut_round_.store(round, std::memory_order_release);
  }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  bool deadline_passed() const {
    const int64_t ns = deadline_ns_.load(std::memory_order_acquire);
    return ns != kNoDeadline &&
           Clock::now().time_since_epoch().count() >= ns;
  }
  /// True when work should stop for a timing-dependent reason (manual
  /// cancel or deadline). Does NOT consult the forced cut round.
  bool ShouldStop() const { return cancel_requested() || deadline_passed(); }

  /// PPA's per-round checkpoint: true when the generator must cut before
  /// running round `round` (0-based count of rounds completed so far).
  bool CutAtRound(size_t round) const {
    return round >= forced_cut_round_.load(std::memory_order_acquire) ||
           ShouldStop();
  }

  /// Status spelling of ShouldStop() for QP_RETURN_IF_ERROR call sites:
  /// OK, kCancelled, or kDeadlineExceeded.
  Status Check() const {
    if (cancel_requested()) return Status::Cancelled("cancel requested");
    if (deadline_passed()) return Status::DeadlineExceeded("deadline passed");
    return Status::OK();
  }

 private:
  static constexpr int64_t kNoDeadline =
      std::numeric_limits<int64_t>::max();

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
  std::atomic<size_t> forced_cut_round_{std::numeric_limits<size_t>::max()};
};

}  // namespace qp::common
