#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace qp {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformDouble(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  double x = UniformDouble(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> out(n);
  std::iota(out.begin(), out.end(), size_t{0});
  std::shuffle(out.begin(), out.end(), engine_);
  return out;
}

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  assert(n > 0);
  cumulative_.resize(n);
  double acc = 0.0;
  for (size_t rank = 1; rank <= n; ++rank) {
    acc += 1.0 / std::pow(static_cast<double>(rank), s);
    cumulative_[rank - 1] = acc;
  }
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  double x = rng.UniformDouble(0.0, cumulative_.back());
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), x);
  return static_cast<size_t>(it - cumulative_.begin()) + 1;
}

}  // namespace qp
