// Lock-contention telemetry: a std::mutex drop-in that attributes lock
// acquisitions, contended waits and wait time to a NAMED SITE, plus the
// process-global registry those sites live in.
//
// Why this lives in `common` and not `obs`: obs depends on common (the
// IntrospectionServer runs on a common::ThreadPool), so a mutex the thread
// pool itself uses cannot reach into obs. The registry here is therefore
// dependency-free — plain atomics, no metrics, no rendering. obs/prof.h
// reads it and renders /contentionz and the qp_prof_lock_* families.
//
// Site model: sites are keyed by a caller-chosen name ("thread_pool",
// "sched_shard", ...) and AGGREGATE — every ProfiledMutex constructed with
// the same name shares one ContentionSite, so the registry stays O(sites)
// no matter how many scheduler shards or pools exist. Sites are created on
// first use and live for the process lifetime (the registry never shrinks),
// which is what makes it safe for a mutex to die while /contentionz renders.
//
// Cost model: the uncontended path is one try_lock plus one relaxed
// fetch_add — no clock read. Only the CONTENDED path (try_lock failed)
// pays two steady_clock reads around the blocking lock(). That keeps the
// drop-in cheap enough for hot locks like the scheduler shards.
//
// Waiting on a ProfiledMutex from a condition variable requires
// std::condition_variable_any (std::condition_variable is hard-wired to
// std::mutex). The CV re-acquisition after a wakeup goes through lock() and
// is counted like any other acquisition — wait-time there measures runqueue
// + lock handoff, not the sleep itself.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace qp::common {

/// Wait-time histogram bucket upper bounds, in seconds: 1us, 10us, 100us,
/// 1ms, 10ms, 100ms, 1s, +Inf.
inline constexpr size_t kContentionBuckets = 8;

/// Snapshot of one named site's counters (ContentionSite::Snapshot).
struct ContentionStats {
  std::string name;
  uint64_t acquisitions = 0;  ///< every successful lock()/try_lock()
  uint64_t contentions = 0;   ///< acquisitions that had to block
  double wait_seconds = 0.0;  ///< total blocked time
  double max_wait_seconds = 0.0;
  /// Per-bucket contended-wait counts (see kContentionBuckets bounds).
  uint64_t wait_buckets[kContentionBuckets] = {0};
};

/// \brief Lock statistics for one named site; shared by every
/// ProfiledMutex constructed with that name. All updates are relaxed
/// atomics — totals are exact, cross-field consistency is not promised.
class ContentionSite {
 public:
  explicit ContentionSite(std::string name) : name_(std::move(name)) {}

  void RecordUncontended() {
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordContended(double wait_seconds);

  ContentionStats Snapshot() const;
  const std::string& name() const { return name_; }

 private:
  const std::string name_;
  std::atomic<uint64_t> acquisitions_{0};
  std::atomic<uint64_t> contentions_{0};
  std::atomic<uint64_t> wait_ns_{0};
  std::atomic<uint64_t> max_wait_ns_{0};
  std::atomic<uint64_t> wait_buckets_[kContentionBuckets] = {};
};

/// \brief Process-global name -> ContentionSite registry.
class ContentionRegistry {
 public:
  static ContentionRegistry& Global();

  /// The site registered under `name`, created on first use. The returned
  /// pointer is stable for the process lifetime.
  ContentionSite* GetSite(const std::string& name);

  /// Every site in registration order.
  std::vector<ContentionStats> Snapshot() const;

 private:
  ContentionRegistry() = default;

  mutable std::mutex mu_;
  std::vector<ContentionSite*> sites_;  ///< leaked on purpose: never freed
};

/// \brief std::mutex drop-in that reports to a named ContentionSite.
///
/// Satisfies Lockable (lock / try_lock / unlock), so it works with
/// std::lock_guard, std::unique_lock and std::condition_variable_any.
class ProfiledMutex {
 public:
  explicit ProfiledMutex(const char* site_name)
      : site_(ContentionRegistry::Global().GetSite(site_name)) {}

  ProfiledMutex(const ProfiledMutex&) = delete;
  ProfiledMutex& operator=(const ProfiledMutex&) = delete;

  void lock() {
    if (mu_.try_lock()) {
      site_->RecordUncontended();
      return;
    }
    const auto start = std::chrono::steady_clock::now();
    mu_.lock();
    site_->RecordContended(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }

  bool try_lock() {
    if (!mu_.try_lock()) return false;
    site_->RecordUncontended();
    return true;
  }

  void unlock() { mu_.unlock(); }

  const ContentionSite* site() const { return site_; }

 private:
  std::mutex mu_;
  ContentionSite* site_;
};

}  // namespace qp::common
