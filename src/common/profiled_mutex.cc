#include "common/profiled_mutex.h"

namespace qp::common {

namespace {

/// Bucket index for a contended wait (upper bounds 1us ... 1s, then +Inf).
size_t BucketFor(double wait_seconds) {
  static constexpr double kBounds[kContentionBuckets - 1] = {
      1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0};
  for (size_t i = 0; i < kContentionBuckets - 1; ++i) {
    if (wait_seconds <= kBounds[i]) return i;
  }
  return kContentionBuckets - 1;
}

}  // namespace

void ContentionSite::RecordContended(double wait_seconds) {
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  contentions_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t ns = static_cast<uint64_t>(wait_seconds * 1e9);
  wait_ns_.fetch_add(ns, std::memory_order_relaxed);
  wait_buckets_[BucketFor(wait_seconds)].fetch_add(1,
                                                   std::memory_order_relaxed);
  uint64_t prev = max_wait_ns_.load(std::memory_order_relaxed);
  while (prev < ns && !max_wait_ns_.compare_exchange_weak(
                          prev, ns, std::memory_order_relaxed)) {
  }
}

ContentionStats ContentionSite::Snapshot() const {
  ContentionStats out;
  out.name = name_;
  out.acquisitions = acquisitions_.load(std::memory_order_relaxed);
  out.contentions = contentions_.load(std::memory_order_relaxed);
  out.wait_seconds = static_cast<double>(
                         wait_ns_.load(std::memory_order_relaxed)) /
                     1e9;
  out.max_wait_seconds = static_cast<double>(
                             max_wait_ns_.load(std::memory_order_relaxed)) /
                         1e9;
  for (size_t i = 0; i < kContentionBuckets; ++i) {
    out.wait_buckets[i] = wait_buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

ContentionRegistry& ContentionRegistry::Global() {
  // Leaked singleton: sites (and the registry itself) must outlive every
  // static-destruction-order race — a ProfiledMutex in a static object may
  // lock during teardown.
  static ContentionRegistry* registry = new ContentionRegistry();
  return *registry;
}

ContentionSite* ContentionRegistry::GetSite(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (ContentionSite* site : sites_) {
    if (site->name() == name) return site;
  }
  sites_.push_back(new ContentionSite(name));  // process-lifetime, see header
  return sites_.back();
}

std::vector<ContentionStats> ContentionRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ContentionStats> out;
  out.reserve(sites_.size());
  for (const ContentionSite* site : sites_) {
    out.push_back(site->Snapshot());
  }
  return out;
}

}  // namespace qp::common
