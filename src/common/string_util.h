// Small string helpers shared across the library.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qp {

/// Returns `s` lower-cased (ASCII only).
std::string ToLower(std::string_view s);

/// Returns `s` upper-cased (ASCII only).
std::string ToUpper(std::string_view s);

/// Case-insensitive equality (ASCII).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double compactly (up to `precision` digits, no trailing zeros).
std::string FormatDouble(double v, int precision = 6);

}  // namespace qp
