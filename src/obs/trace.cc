#include "obs/trace.h"

#include <cstdio>

namespace qp::obs {

namespace {

/// Deterministic double formatting: shortest %g that keeps six significant
/// digits, so the same value always renders the same string.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void TraceSpan::AddAttr(std::string key, std::string value) {
  attrs_.emplace_back(std::move(key), std::move(value));
}

void TraceSpan::AddAttr(std::string key, const char* value) {
  attrs_.emplace_back(std::move(key), std::string(value));
}

void TraceSpan::AddAttr(std::string key, size_t value) {
  attrs_.emplace_back(std::move(key), std::to_string(value));
}

void TraceSpan::AddAttr(std::string key, double value) {
  attrs_.emplace_back(std::move(key), FormatDouble(value));
}

TraceSpan* TraceSpan::AddChild(std::string name) {
  children_.push_back(std::make_unique<TraceSpan>(std::move(name)));
  return children_.back().get();
}

TraceSpan* TraceSpan::Adopt(TraceSpan&& child) {
  children_.push_back(std::make_unique<TraceSpan>(std::move(child)));
  return children_.back().get();
}

void TraceSpan::Render(bool analyze, int indent, std::string* out) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(name_);
  if (analyze) {
    if (!attrs_.empty()) {
      out->append(" (");
      for (size_t i = 0; i < attrs_.size(); ++i) {
        if (i > 0) out->append(", ");
        out->append(attrs_[i].first);
        out->append("=");
        out->append(attrs_[i].second);
      }
      out->append(")");
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), " [%.3f ms]", seconds_ * 1e3);
    out->append(buf);
  }
  out->append("\n");
  for (const auto& child : children_) {
    child->Render(analyze, indent + 1, out);
  }
}

std::string TraceSpan::ToString(bool analyze) const {
  std::string out;
  Render(analyze, 0, &out);
  return out;
}

std::string TraceSpan::RenderChildren(bool analyze) const {
  std::string out;
  for (const auto& child : children_) {
    child->Render(analyze, 0, &out);
  }
  return out;
}

bool TraceSpan::SameShape(const TraceSpan& other) const {
  if (name_ != other.name_ || attrs_ != other.attrs_ ||
      track_ != other.track_ ||
      children_.size() != other.children_.size()) {
    return false;
  }
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->SameShape(*other.children_[i])) return false;
  }
  return true;
}

}  // namespace qp::obs
