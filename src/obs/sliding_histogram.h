// Windowed aggregation over fixed-bucket histograms: the rolling-percentile
// and SLO-attainment substrate behind /metrics' qp_slo_* gauges and the
// shell's \slo command.
//
// The cumulative Histogram in metrics.h answers "what happened since
// process start"; operations questions are windowed — "what is p99 over
// the LAST minute", "how fast is the error budget burning". Both are
// answered here with the classic ring-of-sub-histograms design:
//
//   SlidingCounter    ring of per-slice uint64 cells; WindowTotal(w) sums
//                     the slices covering the last w seconds.
//   SlidingHistogram  ring of per-slice bucket arrays sharing one bounds
//                     vector; WindowSnapshot(w) merges the covering slices
//                     into a Histogram::Snapshot, and WindowQuantile(w, p)
//                     runs the standard interpolation (with the documented
//                     +Inf clamp) over that merge.
//   SloTracker        good/total SlidingCounters against a latency target
//                     and an objective fraction; reports windowed
//                     attainment and burn rate.
//
// Rotation discipline — "rotated on read against an injected clock": no
// background thread ever advances the ring. Every Observe/Add/read first
// rotates the ring forward to the slice the clock says is current, zeroing
// the slices skipped over. Slices strictly older than the ring's span fall
// off. The clock is an injected std::function<double()> (seconds, any
// epoch); tests drive it manually, which makes every windowed read a pure
// function of the (observation, clock-value) sequence — the determinism
// contract the sliding_histogram_test pins at 1/2/8 threads. Production
// callers pass MonotonicClock (steady_clock seconds).
//
// Concurrency: all methods are thread-safe behind one mutex per object.
// These structures sit on per-request paths (one Observe per Personalize,
// one merge per scrape), not per-row paths, so a mutex is the right
// simplicity/cost point — unlike the lock-free cumulative Histogram which
// PPA hammers from every worker.

#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace qp::obs {

/// Seconds on std::chrono::steady_clock — the production clock for every
/// windowed structure here.
double MonotonicClock();

/// \brief Ring of per-time-slice counters; windowed totals on read.
class SlidingCounter {
 public:
  /// `slice_seconds` x `num_slices` is the longest answerable window.
  SlidingCounter(double slice_seconds, size_t num_slices,
                 std::function<double()> clock = MonotonicClock);

  void Add(uint64_t delta = 1);

  /// Sum over the slices covering the last `window_seconds` (clamped to the
  /// ring's span). The current partial slice always counts.
  uint64_t WindowTotal(double window_seconds) const;

  double slice_seconds() const { return slice_seconds_; }
  size_t num_slices() const { return cells_.size(); }

 private:
  /// Rotates the ring so cells_[head_] is the slice `now` falls in,
  /// zeroing everything skipped. Caller holds mu_.
  void RotateLocked(double now) const;

  const double slice_seconds_;
  const std::function<double()> clock_;
  mutable std::mutex mu_;
  mutable std::vector<uint64_t> cells_;
  mutable size_t head_ = 0;        ///< index of the current slice
  mutable int64_t head_slice_ = 0; ///< floor(now / slice_seconds) at head_
};

/// \brief Ring of per-time-slice fixed-bucket histograms; windowed
/// snapshots and quantiles on read.
class SlidingHistogram {
 public:
  /// `bounds` as Histogram (strictly increasing finite upper bounds).
  SlidingHistogram(std::vector<double> bounds, double slice_seconds,
                   size_t num_slices,
                   std::function<double()> clock = MonotonicClock);

  void Observe(double value);

  /// Merged per-bucket counts / count / sum over the slices covering the
  /// last `window_seconds` (clamped to the ring's span).
  Histogram::Snapshot WindowSnapshot(double window_seconds) const;

  /// Quantile estimate over WindowSnapshot(window_seconds) — standard
  /// bucket interpolation with the +Inf clamp (Histogram::QuantileOf).
  double WindowQuantile(double window_seconds, double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  double slice_seconds() const { return slice_seconds_; }
  size_t num_slices() const { return slices_.size(); }

 private:
  struct Slice {
    std::vector<uint64_t> buckets;  ///< bounds_.size() + 1
    uint64_t count = 0;
    double sum = 0.0;
  };

  void RotateLocked(double now) const;

  const std::vector<double> bounds_;
  const double slice_seconds_;
  const std::function<double()> clock_;
  mutable std::mutex mu_;
  mutable std::vector<Slice> slices_;
  mutable size_t head_ = 0;
  mutable int64_t head_slice_ = 0;
};

/// \brief Windowed SLO attainment + burn rate against a latency target.
///
/// The objective reads "`objective` of requests complete within
/// `threshold_seconds`" — e.g. {0.5s, 0.99} is "p99 personalize < 500ms,
/// 99% of requests". Record(latency) classifies one request; RecordBad()
/// counts a request that never produced a latency (shed, expired in queue)
/// as a violation. Attainment over a window is good/total (1.0 when the
/// window is empty — no traffic is not a violation); burn rate is
/// (1 - attainment) / (1 - objective), the standard error-budget spelling:
/// 1.0 burns the budget exactly at the objective's rate, >1 is an alert.
class SloTracker {
 public:
  struct Options {
    double threshold_seconds = 0.5;
    double objective = 0.99;  ///< in (0, 1)
    double slice_seconds = 5.0;
    size_t num_slices = 60;   ///< 60 x 5s = the 5m window, 1m = last 12
    std::function<double()> clock = MonotonicClock;
  };

  explicit SloTracker(Options options);

  /// One completed request: good iff latency < threshold.
  void Record(double latency_seconds);
  /// One request that failed before producing an answer — always bad.
  void RecordBad();

  struct Window {
    uint64_t total = 0;
    uint64_t good = 0;
    double attainment = 1.0;  ///< good/total; 1.0 on an empty window
    double burn_rate = 0.0;   ///< (1-attainment)/(1-objective)
  };
  Window Snapshot(double window_seconds) const;

  /// "slo target=p99<500.0ms objective=99.00% 1m: ... 5m: ..." — the \slo
  /// shell command's rendering.
  std::string Describe() const;

  const Options& options() const { return options_; }
  /// Cumulative (non-windowed) totals since construction.
  uint64_t total() const { return total_.Value(); }
  uint64_t good() const { return good_.Value(); }

 private:
  Options options_;
  SlidingCounter window_total_;
  SlidingCounter window_good_;
  Counter total_;
  Counter good_;
};

}  // namespace qp::obs
