#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

namespace qp::obs {

namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Microseconds with sub-microsecond precision; Chrome accepts fractional
/// ts/dur.
std::string FormatMicros(double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

class Exporter {
 public:
  explicit Exporter(const ChromeTraceOptions& options) : options_(options) {}

  /// Lays out `span` starting at `ts` (us) on `tid`, emits its event and
  /// recursively its children's, and returns the span's effective duration
  /// (its own recorded time, stretched to cover its children's extent).
  double Layout(const TraceSpan& span, double ts, int tid) {
    UseTid(tid, tid == 0 ? "main" : "");
    double cursor = ts;
    size_t i = 0;
    while (i < span.num_children()) {
      const TraceSpan& child = span.child(i);
      if (child.track() == 0) {
        cursor += Layout(child, cursor, tid);
        ++i;
        continue;
      }
      // A maximal consecutive run of parallel slots: all start at the
      // fan-out point, each on a fresh synthetic thread; the run's extent
      // is the slowest slot.
      double run_extent = 0.0;
      while (i < span.num_children() && span.child(i).track() > 0) {
        const TraceSpan& slot = span.child(i);
        const int slot_tid = next_tid_++;
        UseTid(slot_tid, "slot " + std::to_string(slot.track()));
        run_extent = std::max(run_extent, Layout(slot, cursor, slot_tid));
        ++i;
      }
      cursor += run_extent;
    }
    const double duration = std::max(span.seconds() * 1e6, cursor - ts);
    EmitComplete(span, ts, duration, tid);
    return duration;
  }

  /// Lays out the children of `root` sequentially from ts 0 on tid 0
  /// without emitting the root itself.
  void LayoutChildrenOnly(const TraceSpan& root) {
    double cursor = 0.0;
    UseTid(0, "main");
    size_t i = 0;
    while (i < root.num_children()) {
      const TraceSpan& child = root.child(i);
      if (child.track() == 0) {
        cursor += Layout(child, cursor, 0);
        ++i;
        continue;
      }
      double run_extent = 0.0;
      while (i < root.num_children() && root.child(i).track() > 0) {
        const TraceSpan& slot = root.child(i);
        const int slot_tid = next_tid_++;
        UseTid(slot_tid, "slot " + std::to_string(slot.track()));
        run_extent = std::max(run_extent, Layout(slot, cursor, slot_tid));
        ++i;
      }
      cursor += run_extent;
    }
  }

  std::string Finish() {
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    // Metadata first: process name, then one thread_name per tid used.
    std::string meta = "{\"ph\":\"M\",\"pid\":1,\"tid\":0,"
                       "\"name\":\"process_name\",\"args\":{\"name\":";
    AppendJsonString(options_.process_name, &meta);
    meta += "}}";
    Append(std::move(meta), &first, &out);
    for (const auto& [tid, name] : tids_) {
      std::string event = "{\"ph\":\"M\",\"pid\":1,\"tid\":" +
                          std::to_string(tid) +
                          ",\"name\":\"thread_name\",\"args\":{\"name\":";
      AppendJsonString(name.empty() ? "track " + std::to_string(tid) : name,
                       &event);
      event += "}}";
      Append(std::move(event), &first, &out);
    }
    for (auto& event : events_) Append(std::move(event), &first, &out);
    out += "]}";
    return out;
  }

 private:
  void UseTid(int tid, const std::string& name) {
    for (auto& entry : tids_) {
      if (entry.first == tid) return;
    }
    tids_.emplace_back(tid, name);
  }

  void EmitComplete(const TraceSpan& span, double ts, double dur, int tid) {
    std::string event = "{\"ph\":\"X\",\"pid\":1,\"tid\":" +
                        std::to_string(tid) + ",\"ts\":" + FormatMicros(ts) +
                        ",\"dur\":" + FormatMicros(dur) + ",\"name\":";
    AppendJsonString(span.name(), &event);
    if (options_.include_attrs && !span.attrs().empty()) {
      event += ",\"args\":{";
      for (size_t i = 0; i < span.attrs().size(); ++i) {
        if (i > 0) event += ",";
        AppendJsonString(span.attrs()[i].first, &event);
        event += ":";
        AppendJsonString(span.attrs()[i].second, &event);
      }
      event += "}";
    }
    event += "}";
    events_.push_back(std::move(event));
  }

  static void Append(std::string event, bool* first, std::string* out) {
    if (!*first) out->push_back(',');
    *first = false;
    out->append(event);
  }

  const ChromeTraceOptions& options_;
  int next_tid_ = 1;
  std::vector<std::pair<int, std::string>> tids_;  ///< tid -> display name
  std::vector<std::string> events_;
};

}  // namespace

std::string TraceToChromeJson(const TraceSpan& root,
                              const ChromeTraceOptions& options) {
  Exporter exporter(options);
  if (options.skip_root) {
    exporter.LayoutChildrenOnly(root);
  } else {
    exporter.Layout(root, 0.0, 0);
  }
  return exporter.Finish();
}

}  // namespace qp::obs
