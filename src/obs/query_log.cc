#include "obs/query_log.h"

#include <cstdio>
#include <limits>

namespace qp::obs {

namespace {

/// FNV-1a over the fingerprint string, then a splitmix64 finalizer over the
/// combination with the sequence number. Deterministic by construction —
/// the sampling decision for request #n of a given query is the same on
/// every run and at every thread count.
uint64_t MixFingerprintSeq(const std::string& fingerprint, uint64_t seq) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : fingerprint) {
    h ^= c;
    h *= 1099511628211ull;
  }
  uint64_t z = h ^ (seq + 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void AppendField(const char* key, const std::string& value,
                 std::string* out) {
  if (!out->empty() && out->back() != ' ') out->push_back(' ');
  out->append(key);
  out->push_back('=');
  out->append(value);
}

void AppendField(const char* key, uint64_t value, std::string* out) {
  AppendField(key, std::to_string(value), out);
}

void AppendField(const char* key, bool value, std::string* out) {
  AppendField(key, std::string(value ? "true" : "false"), out);
}

void AppendSeconds(const char* key, double value, std::string* out) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  AppendField(key, std::string(buf), out);
}

}  // namespace

std::string QueryLogRecord::AnswerIdentityString() const {
  std::string out;
  AppendField("seq", seq, &out);
  AppendField("user", user_id, &out);
  AppendField("fingerprint", fingerprint, &out);
  AppendField("algorithm", algorithm, &out);
  AppendField("k", static_cast<uint64_t>(k), &out);
  AppendField("l", static_cast<uint64_t>(l), &out);
  AppendField("selected_preferences",
              static_cast<uint64_t>(selected_preferences), &out);
  AppendField("rows_returned", static_cast<uint64_t>(rows_returned), &out);
  AppendField("subqueries_executed",
              static_cast<uint64_t>(subqueries_executed), &out);
  AppendField("rows_scanned", static_cast<uint64_t>(rows_scanned), &out);
  AppendField("rows_joined", static_cast<uint64_t>(rows_joined), &out);
  AppendField("rows_materialized", static_cast<uint64_t>(rows_materialized),
              &out);
  AppendField("partial", partial, &out);
  AppendField("rounds_run", static_cast<uint64_t>(rounds_run), &out);
  AppendField("paths_scan", static_cast<uint64_t>(paths_scan), &out);
  AppendField("paths_probe", static_cast<uint64_t>(paths_probe), &out);
  AppendField("paths_range", static_cast<uint64_t>(paths_range), &out);
  AppendField("scheduled", scheduled, &out);
  AppendField("lane", lane, &out);
  AppendField("shard", static_cast<uint64_t>(shard), &out);
  AppendField("sampled", sampled, &out);
  return out;
}

std::string QueryLogRecord::DeterministicString() const {
  std::string out;
  AppendField("seq", seq, &out);
  AppendField("user", user_id, &out);
  AppendField("fingerprint", fingerprint, &out);
  AppendField("algorithm", algorithm, &out);
  AppendField("k", static_cast<uint64_t>(k), &out);
  AppendField("l", static_cast<uint64_t>(l), &out);
  AppendField("selected_preferences",
              static_cast<uint64_t>(selected_preferences), &out);
  AppendField("state_reused", state_reused, &out);
  AppendField("state_outcome", state_outcome, &out);
  AppendField("selection_cache_hit", selection_cache_hit, &out);
  AppendField("plan_cache_hit", plan_cache_hit, &out);
  AppendField("rows_returned", static_cast<uint64_t>(rows_returned), &out);
  AppendField("subqueries_executed",
              static_cast<uint64_t>(subqueries_executed), &out);
  AppendField("rows_scanned", static_cast<uint64_t>(rows_scanned), &out);
  AppendField("rows_joined", static_cast<uint64_t>(rows_joined), &out);
  AppendField("rows_materialized", static_cast<uint64_t>(rows_materialized),
              &out);
  AppendField("partial", partial, &out);
  AppendField("rounds_run", static_cast<uint64_t>(rounds_run), &out);
  AppendField("paths_scan", static_cast<uint64_t>(paths_scan), &out);
  AppendField("paths_probe", static_cast<uint64_t>(paths_probe), &out);
  AppendField("paths_range", static_cast<uint64_t>(paths_range), &out);
  AppendField("repaired_mutations", static_cast<uint64_t>(repaired_mutations),
              &out);
  AppendField("scheduled", scheduled, &out);
  AppendField("lane", lane, &out);
  AppendField("shard", static_cast<uint64_t>(shard), &out);
  AppendField("sampled", sampled, &out);
  return out;
}

std::string QueryLogRecord::ToString() const {
  std::string out = DeterministicString();
  AppendField("slow", slow, &out);
  AppendField("attempt", static_cast<uint64_t>(attempt), &out);
  AppendSeconds("queue_seconds", queue_seconds, &out);
  AppendSeconds("total_seconds", total_seconds, &out);
  AppendSeconds("state_seconds", state_seconds, &out);
  AppendSeconds("selection_seconds", selection_seconds, &out);
  AppendSeconds("plan_seconds", plan_seconds, &out);
  AppendSeconds("execute_seconds", execute_seconds, &out);
  AppendSeconds("thread_seconds", thread_seconds, &out);
  return out;
}

QueryLog::QueryLog() : QueryLog(Options()) {}

QueryLog::QueryLog(Options options)
    : options_(options),
      latency_(DefaultLatencyBuckets()),
      ring_(options.capacity) {}

bool QueryLog::WouldSample(const std::string& fingerprint,
                           uint64_t seq) const {
  if (options_.sample_rate >= 1.0) return true;
  if (options_.sample_rate <= 0.0) return false;
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(MixFingerprintSeq(fingerprint, seq) >>
                                       11) *
                   0x1.0p-53;
  return u < options_.sample_rate;
}

double QueryLog::SlowThreshold() const {
  if (options_.slow_seconds.has_value()) {
    // <= 0 means "never slow" (the caller disabled the always-keep path).
    return *options_.slow_seconds > 0.0
               ? *options_.slow_seconds
               : std::numeric_limits<double>::infinity();
  }
  const auto snap = latency_.snapshot();
  if (snap.count < options_.adaptive_min_count) {
    return std::numeric_limits<double>::infinity();
  }
  return latency_.Quantile(options_.adaptive_quantile);
}

bool QueryLog::Record(QueryLogRecord record) {
  record.seq = seen_.fetch_add(1, std::memory_order_relaxed);
  // Threshold is read BEFORE this request's latency is observed, so a
  // request never raises the bar it is itself judged against.
  const double threshold = SlowThreshold();
  latency_.Observe(record.total_seconds);
  record.sampled = WouldSample(record.fingerprint, record.seq);
  record.slow = record.total_seconds >= threshold;
  if (!record.sampled && !record.slow) return false;
  retained_.fetch_add(1, std::memory_order_relaxed);
  ring_.Append(std::move(record));
  return true;
}

std::vector<QueryLogRecord> QueryLog::Snapshot() const {
  return ring_.Snapshot();
}

std::string QueryLog::Dump() const {
  const std::vector<QueryLogRecord> records = Snapshot();
  std::string out = "query log: seen=" + std::to_string(seen()) +
                    " retained=" + std::to_string(retained()) +
                    " showing=" + std::to_string(records.size()) + "\n";
  for (const auto& record : records) {
    out += record.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace qp::obs
