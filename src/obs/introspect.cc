#include "obs/introspect.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace qp::obs {
namespace {

/// Header block cap: a GET request line plus a scraper's headers fit in a
/// fraction of this; anything larger is not a client we serve.
constexpr size_t kMaxRequestBytes = 8 * 1024;

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

/// write() the whole buffer, retrying on EINTR / short writes. Any other
/// error abandons the response (the client hung up; nothing to do).
void WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;
  }
}

}  // namespace

const std::string* HttpRequest::Param(const std::string& key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

int HttpRequest::IntParam(const std::string& key, int fallback) const {
  const std::string* value = Param(key);
  if (value == nullptr || value->empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value->c_str(), &end, 10);
  if (errno != 0 || end == value->c_str() || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

std::vector<std::pair<std::string, std::string>> ParseQueryParams(
    const std::string& query) {
  const auto decode = [](const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] == '+') {
        out += ' ';
      } else if (raw[i] == '%' && i + 2 < raw.size() &&
                 std::isxdigit(static_cast<unsigned char>(raw[i + 1])) &&
                 std::isxdigit(static_cast<unsigned char>(raw[i + 2]))) {
        const char hex[3] = {raw[i + 1], raw[i + 2], '\0'};
        out += static_cast<char>(std::strtol(hex, nullptr, 16));
        i += 2;
      } else {
        out += raw[i];  // malformed escape: pass through literally
      }
    }
    return out;
  };
  std::vector<std::pair<std::string, std::string>> out;
  size_t start = 0;
  while (start <= query.size()) {
    size_t amp = query.find('&', start);
    if (amp == std::string::npos) amp = query.size();
    if (amp > start) {
      const std::string pair = query.substr(start, amp - start);
      const size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        out.emplace_back(decode(pair), "");
      } else {
        out.emplace_back(decode(pair.substr(0, eq)),
                         decode(pair.substr(eq + 1)));
      }
    }
    start = amp + 1;
  }
  return out;
}

IntrospectionServer::~IntrospectionServer() { Stop(); }

void IntrospectionServer::Handle(std::string path, Handler handler) {
  handlers_.emplace_back(std::move(path), std::move(handler));
}

bool IntrospectionServer::Start(const Options& options, std::string* error) {
  int fd = -1;
  auto fail = [&](const std::string& why) {
    if (error) *error = why + ": " + std::strerror(errno);
    if (fd >= 0) ::close(fd);
    return false;
  };
  if (running_) {
    if (error) *error = "already running";
    return false;
  }

  fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (::listen(fd, 64) != 0) return fail("listen");

  // Read back the bound port (meaningful when options.port was 0).
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_.store(fd, std::memory_order_release);

  stopping_.store(false, std::memory_order_relaxed);
  pool_ = std::make_unique<common::ThreadPool>(
      std::max<size_t>(options.num_threads, 2), "introspect_pool");
  running_ = true;
  pool_->Submit([this] { AcceptLoop(); });
  return true;
}

void IntrospectionServer::Stop() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (!running_) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Unblock the accept loop BEFORE destroying the pool: the pool's
  // destructor drains submitted work, and the accept task only finishes
  // once its blocking accept() returns with an error.
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  pool_.reset();  // drains: accept loop exit + in-flight handlers
  running_ = false;
  port_ = -1;
}

void IntrospectionServer::AcceptLoop() {
  // Capture the fd value once; Stop()'s shutdown()+close() on this same fd
  // is what unblocks the accept below.
  const int listen_fd = listen_fd_.load(std::memory_order_acquire);
  if (listen_fd < 0) return;
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EBADF / EINVAL after Stop() closed the socket — or a real error,
      // in which case serving is over either way.
      return;
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    pool_->Submit([this, fd] { HandleConnection(fd); });
  }
}

void IntrospectionServer::HandleConnection(int fd) {
  // Read until the end of the header block (CRLFCRLF) or the cap. GET has
  // no body, so the header terminator is the end of the request.
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      request.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF or error
  }

  // Request line: METHOD SP PATH SP VERSION.
  HttpResponse response;
  const size_t line_end = request.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (line.substr(0, sp1) != "GET") {
    response = {405, "text/plain; charset=utf-8", "GET only\n"};
  } else {
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    // Split off the query string: /pprofz?seconds=5 dispatches on /pprofz
    // with the decoded parameters handed to the handler.
    HttpRequest http_request;
    const size_t q = path.find('?');
    if (q != std::string::npos) {
      http_request.params = ParseQueryParams(path.substr(q + 1));
      path.resize(q);
    }
    http_request.path = path;
    response = {404, "text/plain; charset=utf-8", "not found\n"};
    for (const auto& [handler_path, handler] : handlers_) {
      if (path == handler_path) {
        response = handler(http_request);
        break;
      }
    }
  }
  WriteResponse(fd, response);
  ::close(fd);
}

void IntrospectionServer::WriteResponse(int fd, const HttpResponse& response) {
  char header[256];
  const int n = std::snprintf(header, sizeof(header),
                              "HTTP/1.1 %d %s\r\n"
                              "Content-Type: %s\r\n"
                              "Content-Length: %zu\r\n"
                              "Connection: close\r\n"
                              "\r\n",
                              response.status, StatusText(response.status),
                              response.content_type.c_str(),
                              response.body.size());
  if (n <= 0) return;
  WriteAll(fd, header, static_cast<size_t>(n));
  WriteAll(fd, response.body.data(), response.body.size());
}

}  // namespace qp::obs
