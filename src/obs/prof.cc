#include "obs/prof.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <ucontext.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <new>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/profiled_mutex.h"

// Heap interposition is compiled out under ASan/TSan: those runtimes own
// the allocator (and its new/delete pairing diagnostics); overriding the
// global operators there would trade their checking for our sampling.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define QP_HEAP_INTERPOSED 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define QP_HEAP_INTERPOSED 0
#else
#define QP_HEAP_INTERPOSED 1
#endif
#else
#define QP_HEAP_INTERPOSED 1
#endif

namespace qp::obs {
namespace {

constexpr int kMaxFrames = 64;
constexpr size_t kRingCapacity = 2048;  // power of two
constexpr size_t kRingMask = kRingCapacity - 1;

// ---------------------------------------------------------------------------
// Async-signal-safe stack walking

/// A self-pipe for readability probes, created lazily from NON-signal
/// contexts (Start/Enable/WalkStackFromHere) so the signal handler only
/// ever loads the fds. -1 until the first profiler activation. The write
/// end is published last: a handler that sees the write fd can rely on the
/// read fd.
std::atomic<int> g_probe_read_fd{-1};
std::atomic<int> g_probe_write_fd{-1};

/// Creates the probe pipe once. Never called from a signal handler.
void EnsureProbeFd() {
  if (g_probe_write_fd.load(std::memory_order_acquire) >= 0) return;
  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) return;
  int expected = -1;
  if (g_probe_read_fd.compare_exchange_strong(expected, fds[0],
                                              std::memory_order_acq_rel)) {
    g_probe_write_fd.store(fds[1], std::memory_order_release);
  } else {
    // Lost the race; the winner's pipe serves everyone.
    ::close(fds[0]);
    ::close(fds[1]);
  }
}

/// True when the page containing `addr` is actually READABLE, proven by
/// making the kernel copy one byte from it: write(2) into a pipe fails
/// with EFAULT on an unreadable source. Two classic probes get this
/// wrong — msync(MS_ASYNC) only checks that a MAPPING exists, so a
/// PROT_NONE mapping (a thread-stack guard page, exactly where a garbage
/// frame pointer lands) passes it; and write-to-/dev/null never touches
/// the buffer at all (the null driver just returns the count), so it
/// cannot EFAULT either. A pipe write genuinely copies. write/read are
/// async-signal-safe, allocation-free and lock-free; the pipe is drained
/// after each hit so concurrent probes cannot fill its buffer. Without
/// the pipe the probe fails closed and the walk ends at the first
/// unverifiable frame.
///
/// Raw syscall(2), NOT ::write/::read: the sanitizer runtimes interpose
/// libc I/O and their interceptors touch shadow memory for the source
/// buffer — for an arbitrary probed address outside the app ranges the
/// shadow itself is unmapped, so the *interceptor* faults before the
/// kernel ever checks the pointer (observed as a prof_stress_test SEGV
/// under TSan). syscall() skips the interposition; the kernel performs
/// the only dereference and reports it as EFAULT.
bool PageReadable(uintptr_t addr, uintptr_t page_mask) {
  const int wfd = g_probe_write_fd.load(std::memory_order_relaxed);
  if (wfd < 0) return false;
  const void* page = reinterpret_cast<const void*>(addr & ~page_mask);
  for (int attempt = 0; attempt < 2; ++attempt) {
    const ssize_t n = ::syscall(SYS_write, wfd, page, 1);
    char scratch[64];
    // Drain our byte (plus any strays from racing probes). Reading after
    // a failed write too keeps the pipe empty for the retry.
    (void)::syscall(SYS_read, g_probe_read_fd.load(std::memory_order_relaxed),
                    scratch, sizeof(scratch));
    if (n == 1) return true;
    if (errno != EAGAIN) return false;  // EFAULT: unreadable
    // EAGAIN: racing probes momentarily filled the pipe; retry once after
    // the drain above, else fail closed.
  }
  return false;
}

/// Walks a frame-pointer chain starting at (pc, fp). Every dereference is
/// guarded: fp must be pointer-aligned, strictly increasing (stacks grow
/// down; walking toward the base only moves up), step at most 1 MiB, and
/// both words of the frame record probed readable. A chain broken by a
/// frame-pointer-less library frame simply ends the walk.
///
/// no_sanitize: the frame loads are wild-but-verified reads. Under TSan
/// an instrumented read computes a shadow address first, and a page that
/// is kernel-readable yet outside TSan's application ranges (runtime
/// internals, odd mappings a garbage fp can land in) has NO shadow — the
/// instrumentation faults on the shadow access before the app load even
/// runs (observed: SEGV inside __tsan::MemoryAccess). Under ASan the
/// load could trip poisoned-redzone reports for the same reason. The
/// plain uninstrumented load is exactly what the pipe probe proved safe.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((no_sanitize("thread", "address")))
#endif
int WalkFromFp(const void* pc, uintptr_t fp, uintptr_t page_mask,
               const void** pcs, int max) {
  int n = 0;
  if (pc != nullptr && n < max) pcs[n++] = pc;
  uintptr_t last_probed_page = 0;
  while (n < max) {
    // < 4096: a frame pointer in the zero page is garbage even when some
    // environment maps page zero readable.
    if (fp < 4096 || (fp & (sizeof(uintptr_t) - 1)) != 0) break;
    // Probe the two words [fp, fp+2*ws): one page check usually covers
    // both; re-probe only when the record crosses a page edge.
    const uintptr_t first_page = fp & ~page_mask;
    const uintptr_t last_page =
        (fp + 2 * sizeof(uintptr_t) - 1) & ~page_mask;
    if (first_page != last_probed_page) {
      if (!PageReadable(fp, page_mask)) break;
      last_probed_page = first_page;
    }
    if (last_page != first_page) {
      if (!PageReadable(last_page, page_mask)) break;
      // Walking up the stack, the next frames live on this page: remember
      // it so they skip their first-word probe.
      last_probed_page = last_page;
    }
    const uintptr_t* frame = reinterpret_cast<const uintptr_t*>(fp);
    const uintptr_t next_fp = frame[0];
    const uintptr_t ret = frame[1];
    if (ret < 4096) break;  // return address in the zero page: garbage
    pcs[n++] = reinterpret_cast<const void*>(ret);
    if (next_fp <= fp || next_fp - fp > (1u << 20)) break;
    fp = next_fp;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Lock-free MPSC sample ring (Vyukov bounded queue)
//
// Producers are SIGPROF handlers on arbitrary threads; the consumer is
// whoever drains under the profiler mutex. Push is lock-free (CAS loop, no
// syscalls) and drops on full — a profiler must never block the profiled.

struct RingCell {
  std::atomic<uint64_t> seq{0};
  int32_t depth = 0;
  const void* pcs[kMaxFrames];
};

struct SampleRing {
  RingCell cells[kRingCapacity];
  std::atomic<uint64_t> head{0};
  uint64_t tail = 0;  ///< consumer-only; guarded by the profiler mutex

  void InitSequences() {
    for (size_t i = 0; i < kRingCapacity; ++i) {
      cells[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  /// Signal-context push. False when the ring is full.
  bool TryPush(const void* const* pcs, int depth) {
    uint64_t pos = head.load(std::memory_order_relaxed);
    for (;;) {
      RingCell& cell = cells[pos & kRingMask];
      const uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const int64_t dif =
          static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (dif == 0) {
        if (head.compare_exchange_weak(pos, pos + 1,
                                       std::memory_order_relaxed)) {
          cell.depth = depth;
          for (int i = 0; i < depth; ++i) cell.pcs[i] = pcs[i];
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = head.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer pop; false when empty (or the next slot is mid-write, in
  /// which case it will be available on the next drain).
  bool TryPop(const void** pcs, int* depth) {
    RingCell& cell = cells[tail & kRingMask];
    const uint64_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<int64_t>(seq) - static_cast<int64_t>(tail + 1) < 0) {
      return false;
    }
    *depth = cell.depth;
    for (int i = 0; i < cell.depth; ++i) pcs[i] = cell.pcs[i];
    cell.seq.store(tail + kRingCapacity, std::memory_order_release);
    ++tail;
    return true;
  }
};

// ---------------------------------------------------------------------------
// Symbolization + folded rendering (render-time only, never on the hot path)

/// Demangles and trims one frame name for folded output: strip the
/// argument list (flamegraph frames are function identities, not
/// signatures) and replace the characters the folded format reserves.
std::string CleanFrameName(std::string name) {
  // "(anonymous namespace)" would be destroyed by the paren trim below.
  for (size_t pos; (pos = name.find("(anonymous namespace)")) !=
                   std::string::npos;) {
    name.replace(pos, 21, "{anon}");
  }
  size_t paren = name.find('(');
  // Keep "operator()" and friends intact.
  while (paren != std::string::npos && paren >= 8 &&
         name.compare(paren - 8, 8, "operator") == 0) {
    paren = name.find('(', paren + 2);
  }
  if (paren != std::string::npos) name.resize(paren);
  for (char& c : name) {
    if (c == ';' || c == ' ' || c == '\n') c = '_';
  }
  return name.empty() ? std::string("??") : name;
}

using Stack = std::vector<const void*>;
using SymbolCache = std::map<const void*, std::string>;

const std::string& SymbolFor(const void* pc, SymbolCache* cache) {
  auto it = cache->find(pc);
  if (it != cache->end()) return it->second;
  return cache->emplace(pc, SymbolizePc(pc)).first->second;
}

/// Renders a stack -> weight fold table as collapsed-stack text, merging
/// stacks that symbolize identically. Stacks are stored leaf-first; the
/// folded format wants root first.
std::string RenderFolded(const std::map<Stack, uint64_t>& folds,
                         SymbolCache* cache) {
  std::map<std::string, uint64_t> lines;
  for (const auto& [stack, weight] : folds) {
    if (weight == 0) continue;
    std::string line;
    for (size_t i = stack.size(); i-- > 0;) {
      if (!line.empty()) line += ';';
      line += SymbolFor(stack[i], cache);
    }
    if (line.empty()) line = "??";
    lines[line] += weight;
  }
  std::string out;
  for (const auto& [line, weight] : lines) {
    out += line;
    out += ' ';
    out += std::to_string(weight);
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// CPU profiler state

struct CpuState {
  std::mutex mu;  ///< lifecycle + fold table + ring consumer side
  SampleRing ring;
  bool ring_inited = false;
  bool handler_installed = false;
  std::atomic<bool> running{false};
  std::atomic<uint64_t> samples{0};
  std::atomic<uint64_t> dropped{0};
  uintptr_t page_mask = 4095;
  std::map<Stack, uint64_t> folds;
  SymbolCache symbols;
};

/// Plain pointer for the signal handler (no magic-static guard on the
/// signal path). Set under CpuS()'s initialization, which Start() runs
/// before the handler is ever installed.
CpuState* g_cpu_state = nullptr;

CpuState& CpuS() {
  static CpuState* state = [] {
    auto* s = new CpuState();
    g_cpu_state = s;
    return s;
  }();
  return *state;
}

void SigprofHandler(int /*sig*/, siginfo_t* /*info*/, void* ucontext) {
  CpuState* s = g_cpu_state;
  if (s == nullptr || !s->running.load(std::memory_order_relaxed)) return;
  const int saved_errno = errno;
  const void* pc = nullptr;
  uintptr_t fp = 0;
#if defined(__x86_64__)
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucontext);
  pc = reinterpret_cast<const void*>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucontext);
  pc = reinterpret_cast<const void*>(uc->uc_mcontext.pc);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
#else
  (void)ucontext;
  // Unknown ABI: attribute the sample to the handler's caller chain. The
  // walk crosses the signal trampoline only if the kernel links it; the
  // validators make that safe either way.
  fp = reinterpret_cast<uintptr_t>(__builtin_frame_address(0));
#endif
  const void* pcs[kMaxFrames];
  const int depth = WalkFromFp(pc, fp, s->page_mask, pcs, kMaxFrames);
  if (depth > 0 && s->ring.TryPush(pcs, depth)) {
    s->samples.fetch_add(1, std::memory_order_relaxed);
  } else {
    s->dropped.fetch_add(1, std::memory_order_relaxed);
  }
  errno = saved_errno;
}

/// Drains the ring into the fold table (caller holds s->mu).
void DrainLocked(CpuState* s) {
  const void* pcs[kMaxFrames];
  int depth = 0;
  while (s->ring.TryPop(pcs, &depth)) {
    s->folds[Stack(pcs, pcs + depth)] += 1;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// CpuProfiler

CpuProfiler& CpuProfiler::Global() {
  CpuS();  // force state construction
  static CpuProfiler* profiler = new CpuProfiler();
  return *profiler;
}

Status CpuProfiler::Start(const Options& options) {
  CpuState& s = CpuS();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.running.load(std::memory_order_relaxed)) {
    return Status::AlreadyExists("cpu profiler already running");
  }
  if (options.hz <= 0 || options.hz > 1000) {
    return Status::InvalidArgument("cpu profiler hz out of range (1..1000)");
  }
  if (!s.ring_inited) {
    s.ring.InitSequences();
    s.ring_inited = true;
  }
  EnsureProbeFd();
  const long page = ::sysconf(_SC_PAGESIZE);
  s.page_mask = static_cast<uintptr_t>(page > 0 ? page : 4096) - 1;
  if (!s.handler_installed) {
    // Installed once, never restored: a SIGPROF left pending after Stop()
    // must land in our (now no-op) handler, not SIG_DFL, whose default
    // action terminates the process.
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = SigprofHandler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (::sigaction(SIGPROF, &sa, nullptr) != 0) {
      return Status::Internal(std::string("sigaction(SIGPROF): ") +
                              std::strerror(errno));
    }
    s.handler_installed = true;
  }
  s.running.store(true, std::memory_order_relaxed);
  itimerval timer;
  const long usec = 1000000L / options.hz;
  timer.it_interval.tv_sec = 0;
  timer.it_interval.tv_usec = usec;
  timer.it_value = timer.it_interval;
  if (::setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    s.running.store(false, std::memory_order_relaxed);
    return Status::Internal(std::string("setitimer(ITIMER_PROF): ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

void CpuProfiler::Stop() {
  CpuState& s = CpuS();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.running.load(std::memory_order_relaxed)) return;
  itimerval off;
  std::memset(&off, 0, sizeof(off));
  ::setitimer(ITIMER_PROF, &off, nullptr);
  s.running.store(false, std::memory_order_relaxed);
}

bool CpuProfiler::running() const {
  return CpuS().running.load(std::memory_order_relaxed);
}

void CpuProfiler::Reset() {
  CpuState& s = CpuS();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.ring_inited) DrainLocked(&s);  // discard below, but advance tail
  s.folds.clear();
  s.samples.store(0, std::memory_order_relaxed);
  s.dropped.store(0, std::memory_order_relaxed);
}

std::string CpuProfiler::FoldedText() {
  CpuState& s = CpuS();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.ring_inited) DrainLocked(&s);
  return RenderFolded(s.folds, &s.symbols);
}

CpuProfileTotals CpuProfiler::totals() const {
  CpuState& s = CpuS();
  CpuProfileTotals out;
  out.samples = s.samples.load(std::memory_order_relaxed);
  out.dropped = s.dropped.load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// Heap profiler
//
// Fast-path globals are constant-initialized (no dynamic initializers):
// the interposed operators run during static initialization of other
// translation units, long before any heap-profiler state could be built.
// All heavier state hangs off g_heap_st, which exists only once Enable()
// (or Global()) has run — and g_heap_on can only be true after that.

namespace {

struct HeapRecord {
  uint64_t size = 0;    ///< raw allocation size
  uint64_t weight = 0;  ///< estimated bytes this sample represents
  Stack stack;
};

constexpr size_t kHeapShards = 16;

struct HeapShard {
  std::mutex mu;
  std::unordered_map<const void*, HeapRecord> live;
};

struct HeapState {
  HeapShard shards[kHeapShards];
  std::atomic<uint64_t> sampled_allocs{0};
  std::atomic<uint64_t> sampled_bytes{0};
  std::atomic<uint64_t> estimated_alloc_bytes{0};
  std::atomic<uint64_t> live_sampled_bytes{0};
  std::atomic<uint64_t> live_estimated_bytes{0};
  /// Cumulative allocation attribution (survives frees).
  std::mutex alloc_mu;
  std::map<Stack, uint64_t> alloc_folds;
  SymbolCache symbols;
  std::mutex symbols_mu;
};

std::atomic<bool> g_heap_on{false};
std::atomic<uint64_t> g_heap_interval{512 * 1024};
/// Live sampled pointers: lets the free path skip the shard lock entirely
/// whenever nothing is being tracked.
std::atomic<uint64_t> g_heap_live_count{0};
HeapState* g_heap_st = nullptr;

HeapState& HeapS() {
  static HeapState* state = [] {
    auto* s = new HeapState();
    g_heap_st = s;
    return s;
  }();
  return *state;
}

#if QP_HEAP_INTERPOSED

thread_local bool tl_in_heap_hook = false;
thread_local bool tl_heap_inited = false;
thread_local uint64_t tl_heap_rng = 0;
thread_local int64_t tl_heap_countdown = 0;

uint64_t XorShift64(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

/// Geometric (exponential) bytes-to-next-sample with the configured mean.
int64_t NextHeapInterval() {
  const uint64_t mean = g_heap_interval.load(std::memory_order_relaxed);
  const uint64_t r = XorShift64(&tl_heap_rng);
  // Uniform in (0, 1]: never 0, so log() is finite.
  const double u =
      (static_cast<double>(r >> 11) + 1.0) / 9007199254740993.0;
  const double next = -std::log(u) * static_cast<double>(mean);
  return next < 1.0 ? 1 : static_cast<int64_t>(next);
}

size_t HeapShardOf(const void* p) {
  uintptr_t v = reinterpret_cast<uintptr_t>(p);
  v ^= v >> 12;
  return (v >> 4) % kHeapShards;
}

void HeapSampleAlloc(void* p, size_t size) {
  if (!g_heap_on.load(std::memory_order_relaxed)) return;
  if (tl_in_heap_hook) return;
  if (!tl_heap_inited) {
    tl_heap_inited = true;
    tl_heap_rng =
        reinterpret_cast<uintptr_t>(&tl_heap_rng) | 1;  // per-thread seed
    tl_heap_countdown = NextHeapInterval();
    return;
  }
  tl_heap_countdown -= static_cast<int64_t>(size);
  if (tl_heap_countdown >= 0) return;
  HeapState* s = g_heap_st;
  if (s == nullptr) return;
  // Everything below may allocate (map nodes, stack vector); the guard
  // makes those inner allocations plain instead of recursing.
  tl_in_heap_hook = true;
  tl_heap_countdown = NextHeapInterval();
  const uint64_t interval = g_heap_interval.load(std::memory_order_relaxed);
  const uint64_t weight = size > interval ? size : interval;
  const void* pcs[kMaxFrames];
  const int depth = internal::WalkStackFromHere(pcs, kMaxFrames, /*skip=*/2);
  HeapRecord rec;
  rec.size = size;
  rec.weight = weight;
  rec.stack.assign(pcs, pcs + depth);
  {
    HeapShard& shard = s->shards[HeapShardOf(p)];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.live[p] = rec;
  }
  {
    std::lock_guard<std::mutex> lock(s->alloc_mu);
    s->alloc_folds[rec.stack] += weight;
  }
  s->sampled_allocs.fetch_add(1, std::memory_order_relaxed);
  s->sampled_bytes.fetch_add(size, std::memory_order_relaxed);
  s->estimated_alloc_bytes.fetch_add(weight, std::memory_order_relaxed);
  s->live_sampled_bytes.fetch_add(size, std::memory_order_relaxed);
  s->live_estimated_bytes.fetch_add(weight, std::memory_order_relaxed);
  g_heap_live_count.fetch_add(1, std::memory_order_relaxed);
  tl_in_heap_hook = false;
}

void HeapSampleFree(void* p) {
  // Checked even when sampling is off: records of still-live sampled
  // allocations must be matched after Disable() or live attribution leaks.
  if (g_heap_live_count.load(std::memory_order_relaxed) == 0) return;
  if (tl_in_heap_hook) return;
  HeapState* s = g_heap_st;
  if (s == nullptr) return;
  HeapShard& shard = s->shards[HeapShardOf(p)];
  tl_in_heap_hook = true;  // map erase may free nodes
  uint64_t size = 0;
  uint64_t weight = 0;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.live.find(p);
    if (it != shard.live.end()) {
      size = it->second.size;
      weight = it->second.weight;
      shard.live.erase(it);
      found = true;
    }
  }
  tl_in_heap_hook = false;
  if (found) {
    s->live_sampled_bytes.fetch_sub(size, std::memory_order_relaxed);
    s->live_estimated_bytes.fetch_sub(weight, std::memory_order_relaxed);
    g_heap_live_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

#endif  // QP_HEAP_INTERPOSED

}  // namespace

HeapProfiler& HeapProfiler::Global() {
  HeapS();  // force state construction before sampling can start
  static HeapProfiler* profiler = new HeapProfiler();
  return *profiler;
}

bool HeapProfiler::Available() { return QP_HEAP_INTERPOSED != 0; }

void HeapProfiler::Enable(uint64_t mean_sample_bytes) {
  HeapS();
  EnsureProbeFd();  // the sampling hook walks stacks; arm the probe first
  if (mean_sample_bytes == 0) mean_sample_bytes = 1;
  g_heap_interval.store(mean_sample_bytes, std::memory_order_relaxed);
  if (Available()) g_heap_on.store(true, std::memory_order_relaxed);
}

void HeapProfiler::Disable() {
  g_heap_on.store(false, std::memory_order_relaxed);
}

bool HeapProfiler::enabled() const {
  return g_heap_on.load(std::memory_order_relaxed);
}

void HeapProfiler::Reset() {
  HeapState& s = HeapS();
  uint64_t forgotten = 0;
  for (HeapShard& shard : s.shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    forgotten += shard.live.size();
    shard.live.clear();
  }
  // Forgotten pointers' later frees become no-ops by design; keep the live
  // counter in sync so the free fast path stays cheap.
  g_heap_live_count.fetch_sub(forgotten, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(s.alloc_mu);
    s.alloc_folds.clear();
  }
  s.sampled_allocs.store(0, std::memory_order_relaxed);
  s.sampled_bytes.store(0, std::memory_order_relaxed);
  s.estimated_alloc_bytes.store(0, std::memory_order_relaxed);
  s.live_sampled_bytes.store(0, std::memory_order_relaxed);
  s.live_estimated_bytes.store(0, std::memory_order_relaxed);
}

std::string HeapProfiler::FoldedText(bool live) {
  HeapState& s = HeapS();
  std::map<Stack, uint64_t> folds;
  if (live) {
    for (HeapShard& shard : s.shards) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const auto& [p, rec] : shard.live) {
        folds[rec.stack] += rec.weight;
      }
    }
  } else {
    std::lock_guard<std::mutex> lock(s.alloc_mu);
    folds = s.alloc_folds;
  }
  std::lock_guard<std::mutex> lock(s.symbols_mu);
  return RenderFolded(folds, &s.symbols);
}

HeapProfileTotals HeapProfiler::totals() const {
  HeapState& s = HeapS();
  HeapProfileTotals out;
  out.sampled_allocs = s.sampled_allocs.load(std::memory_order_relaxed);
  out.sampled_bytes = s.sampled_bytes.load(std::memory_order_relaxed);
  out.estimated_alloc_bytes =
      s.estimated_alloc_bytes.load(std::memory_order_relaxed);
  out.live_sampled_bytes =
      s.live_sampled_bytes.load(std::memory_order_relaxed);
  out.live_estimated_bytes =
      s.live_estimated_bytes.load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// Contention rendering

std::string ContentionText() {
  const std::vector<common::ContentionStats> sites =
      common::ContentionRegistry::Global().Snapshot();
  std::string out =
      "# lock contention by site (common::ProfiledMutex)\n"
      "# wait buckets (s): <=1e-6 <=1e-5 <=1e-4 <=1e-3 <=1e-2 <=1e-1 <=1 "
      "+Inf\n";
  char buf[256];
  for (const common::ContentionStats& site : sites) {
    std::snprintf(buf, sizeof(buf),
                  "%s acquisitions=%llu contentions=%llu wait_seconds=%.6f "
                  "max_wait_seconds=%.6f buckets=",
                  site.name.c_str(),
                  static_cast<unsigned long long>(site.acquisitions),
                  static_cast<unsigned long long>(site.contentions),
                  site.wait_seconds, site.max_wait_seconds);
    out += buf;
    for (size_t i = 0; i < common::kContentionBuckets; ++i) {
      if (i > 0) out += ',';
      out += std::to_string(site.wait_buckets[i]);
    }
    out += '\n';
  }
  return out;
}

ContentionTotals ContentionTotalsNow() {
  ContentionTotals out;
  for (const common::ContentionStats& site :
       common::ContentionRegistry::Global().Snapshot()) {
    out.acquisitions += site.acquisitions;
    out.contentions += site.contentions;
    out.wait_seconds += site.wait_seconds;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Symbolization

std::string SymbolizePc(const void* pc) {
  Dl_info info;
  std::memset(&info, 0, sizeof(info));
  if (::dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string name = (status == 0 && demangled != nullptr)
                           ? std::string(demangled)
                           : std::string(info.dli_sname);
    std::free(demangled);
    return CleanFrameName(std::move(name));
  }
  char buf[64];
  if (info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    base = base != nullptr ? base + 1 : info.dli_fname;
    std::snprintf(buf, sizeof(buf), "+0x%llx",
                  static_cast<unsigned long long>(
                      reinterpret_cast<uintptr_t>(pc) -
                      reinterpret_cast<uintptr_t>(info.dli_fbase)));
    return CleanFrameName(std::string(base) + buf);
  }
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(
                    reinterpret_cast<uintptr_t>(pc)));
  return buf;
}

namespace internal {

int WalkStackFromHere(const void** pcs, int max, int skip) {
  EnsureProbeFd();  // non-signal context; covers direct (test) callers
  const uintptr_t fp =
      reinterpret_cast<uintptr_t>(__builtin_frame_address(0));
  const long page = ::sysconf(_SC_PAGESIZE);
  const uintptr_t page_mask =
      static_cast<uintptr_t>(page > 0 ? page : 4096) - 1;
  const void* raw[kMaxFrames];
  const int limit = max + skip + 1 > kMaxFrames ? kMaxFrames
                                                : max + skip + 1;
  // pc=nullptr: this function's own pc is frame "skip 0"; start from the
  // chain, then drop `skip`+1 innermost entries (this frame included).
  const int n = WalkFromFp(nullptr, fp, page_mask, raw, limit);
  int out = 0;
  for (int i = skip; i < n && out < max; ++i) pcs[out++] = raw[i];
  return out;
}

}  // namespace internal

}  // namespace qp::obs

// ---------------------------------------------------------------------------
// Interposed global operator new/delete (sampled; see header). Every
// overload funnels through malloc/free so pairing is uniform. Compiled out
// under ASan/TSan (QP_HEAP_INTERPOSED) to keep their allocator diagnostics.

#if QP_HEAP_INTERPOSED

namespace {

void* QpAllocOrThrow(std::size_t size) {
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  qp::obs::HeapSampleAlloc(p, size);
  return p;
}

void* QpAllocNoThrow(std::size_t size) noexcept {
  void* p = std::malloc(size != 0 ? size : 1);
  if (p != nullptr) qp::obs::HeapSampleAlloc(p, size);
  return p;
}

void* QpAllocAligned(std::size_t size, std::size_t align) noexcept {
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (::posix_memalign(&p, align, size != 0 ? size : 1) != 0) return nullptr;
  qp::obs::HeapSampleAlloc(p, size);
  return p;
}

void QpFree(void* p) noexcept {
  if (p == nullptr) return;
  qp::obs::HeapSampleFree(p);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return QpAllocOrThrow(size); }
void* operator new[](std::size_t size) { return QpAllocOrThrow(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return QpAllocNoThrow(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return QpAllocNoThrow(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = QpAllocAligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = QpAllocAligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return QpAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return QpAllocAligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { QpFree(p); }
void operator delete[](void* p) noexcept { QpFree(p); }
void operator delete(void* p, std::size_t) noexcept { QpFree(p); }
void operator delete[](void* p, std::size_t) noexcept { QpFree(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { QpFree(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { QpFree(p); }
void operator delete(void* p, std::align_val_t) noexcept { QpFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { QpFree(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  QpFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  QpFree(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  QpFree(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  QpFree(p);
}

#endif  // QP_HEAP_INTERPOSED
