// Bounded overwrite ring shared by QueryLog and FlightRecorder: a
// fixed-capacity buffer that keeps the most recent `capacity` entries and
// silently overwrites the oldest when full — the flight-recorder semantic,
// not a queue (nothing is ever popped; readers take snapshots).
//
// Concurrency: the append path claims a slot with a single atomic
// fetch_add, so concurrent producers never contend on a shared lock. Each
// slot carries its own mutex guarding the (non-atomic) payload write; it is
// uncontended unless two producers collide on the same slot, which requires
// one of them to lag a full lap of the ring. A writer that discovers the
// slot already holds a NEWER ticket (it was lapped while stalled) drops its
// entry rather than clobbering fresher data. Snapshot() locks slots one at
// a time and orders entries by ticket, so readers never block the whole
// ring and always see whole entries (payloads are copied under the slot
// lock — no torn strings).

#pragma once

#include <atomic>
#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace qp::obs {

template <typename T>
class OverwriteRing {
 public:
  explicit OverwriteRing(size_t capacity) : capacity_(capacity) {
    if (capacity_ > 0) slots_ = std::make_unique<Slot[]>(capacity_);
  }

  size_t capacity() const { return capacity_; }

  /// Total entries ever appended (retained + overwritten).
  uint64_t seen() const { return next_.load(std::memory_order_relaxed); }

  /// Appends `value`, overwriting the oldest entry when full. Returns the
  /// entry's ticket (0-based admission sequence). No-op when capacity is 0.
  uint64_t Append(T value) {
    if (capacity_ == 0) return 0;
    const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slots_[ticket % capacity_];
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.used && slot.ticket > ticket) return ticket;  // lapped: drop
    slot.ticket = ticket;
    slot.used = true;
    slot.value = std::move(value);
    return ticket;
  }

  /// The retained entries, oldest first (by ticket).
  std::vector<T> Snapshot() const {
    std::vector<std::pair<uint64_t, T>> entries;
    entries.reserve(capacity_);
    for (size_t i = 0; i < capacity_; ++i) {
      Slot& slot = slots_[i];
      std::lock_guard<std::mutex> lock(slot.mu);
      if (slot.used) entries.emplace_back(slot.ticket, slot.value);
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<T> out;
    out.reserve(entries.size());
    for (auto& e : entries) out.push_back(std::move(e.second));
    return out;
  }

 private:
  struct Slot {
    mutable std::mutex mu;
    uint64_t ticket = 0;
    bool used = false;
    T value{};
  };

  const size_t capacity_;
  std::atomic<uint64_t> next_{0};
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace qp::obs
