#include "obs/flight_recorder.h"

#include <cstdio>

namespace qp::obs {

namespace {

/// The recorder currently wired to the Status listener hook. The listener
/// must be a plain function pointer (qp::common knows nothing about obs),
/// so the target recorder is a file-local atomic this trampoline reads.
std::atomic<FlightRecorder*> g_status_target{nullptr};

void StatusTrampoline(StatusCode code, const std::string& message) {
  FlightRecorder* target = g_status_target.load(std::memory_order_acquire);
  if (target == nullptr) return;
  target->Record(FlightEventKind::kError, "status",
                 std::string(StatusCodeName(code)) + ": " + message);
}

}  // namespace

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kSpan:
      return "span";
    case FlightEventKind::kError:
      return "error";
    case FlightEventKind::kNote:
      return "note";
  }
  return "unknown";
}

std::string FlightEvent::ToString() const {
  std::string out = FlightEventKindName(kind);
  out += " ";
  out += source;
  out += ": ";
  out += detail;
  if (kind == FlightEventKind::kSpan) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), " [%.3f ms]", seconds * 1e3);
    out += buf;
  }
  return out;
}

FlightRecorder::FlightRecorder(size_t capacity) : ring_(capacity) {}

FlightRecorder::~FlightRecorder() { CaptureStatusErrors(false); }

void FlightRecorder::Record(FlightEventKind kind, std::string source,
                            std::string detail, double seconds) {
  FlightEvent event;
  event.kind = kind;
  event.source = std::move(source);
  event.detail = std::move(detail);
  event.seconds = seconds;
  ring_.Append(std::move(event));
}

void FlightRecorder::RecordSpan(const TraceSpan& span, std::string source) {
  Record(FlightEventKind::kSpan, std::move(source), span.name(),
         span.seconds());
}

void FlightRecorder::CaptureStatusErrors(bool enable) {
  if (enable == capturing_) return;
  capturing_ = enable;
  if (enable) {
    g_status_target.store(this, std::memory_order_release);
    SetStatusListener(&StatusTrampoline);
  } else {
    FlightRecorder* expected = this;
    if (g_status_target.compare_exchange_strong(
            expected, nullptr, std::memory_order_acq_rel)) {
      SetStatusListener(nullptr);
    }
  }
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  return ring_.Snapshot();
}

std::string FlightRecorder::Dump() const {
  const std::vector<FlightEvent> events = Snapshot();
  std::string out = "flight recorder: seen=" + std::to_string(seen()) +
                    " capacity=" + std::to_string(capacity()) +
                    " showing=" + std::to_string(events.size()) + "\n";
  for (const auto& event : events) {
    out += event.ToString();
    out += "\n";
  }
  return out;
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* instance = new FlightRecorder(256);
  return *instance;
}

}  // namespace qp::obs
