// qp::obs phase 4 — continuous profiling: where do the cycles, the lock
// waits and the bytes go?
//
// Three collectors, all cheap enough to leave on in a serving process:
//
//  1. CpuProfiler — a sampling wall/CPU profiler. SIGPROF from
//     setitimer(ITIMER_PROF) fires against whichever thread is burning CPU
//     (the kernel delivers process-CPU-timer signals to a running thread),
//     so per-thread attribution falls out statistically with no thread
//     registration. The handler takes an async-signal-safe frame-pointer
//     backtrace (requires -fno-omit-frame-pointer, which the build sets
//     globally) and pushes it into a lock-free fixed-capacity MPSC ring;
//     the ring is drained OFF-signal into a stack -> count fold table and
//     symbolized lazily (dladdr + __cxa_demangle) only at render time.
//     Output is collapsed/folded-stack text: `frame;frame;frame count`,
//     one line per unique stack, root first — directly consumable by
//     flamegraph.pl or scripts/fold_to_svg.py.
//
//  2. Lock contention — rendered from common::ContentionRegistry (the
//     sites behind common::ProfiledMutex; the registry lives in `common`
//     because the thread pool itself uses a profiled mutex and obs depends
//     on common, not the other way around).
//
//  3. HeapProfiler — sampled operator new/delete interposition: a
//     thread-local byte countdown with geometrically distributed refresh
//     (mean Options-chosen bytes between samples) picks ~one allocation
//     per interval; sampled pointers carry their stack until freed, so
//     live bytes AND allocation rate both attribute to stacks. Each sample
//     is weighted by max(size, interval) as an unbiased-enough estimate of
//     the bytes it represents. The interposed operators are compiled out
//     under ASan/TSan (those runtimes own malloc and new/delete pairing
//     diagnostics); HeapProfiler::Available() reports which build this is.
//
// Determinism contract: everything here is timing-derived and lives
// OUTSIDE the deterministic surface. Profiling state must never feed the
// query log's deterministic projection, answers, ExecStats or the pinned
// bench counters — all byte-identical guarantees hold with every collector
// enabled (tests/prof_stress_test.cc pins this differentially).
//
// Signal-safety rules for CpuProfiler's handler (see DESIGN.md):
//   - no allocation, no locks, no stdio, no exceptions;
//   - the only shared-state writes are lock-free ring slots + relaxed
//     counters;
//   - every frame pointer is validated (alignment, monotonically
//     increasing, bounded step) and its page proven readable before
//     dereference by write(2)-ing one byte from it into a pre-opened
//     self-pipe (EFAULT == unreadable; unlike msync this rejects PROT_NONE
//     guard pages, and unlike /dev/null — whose driver reports success
//     without ever reading the buffer — a pipe write genuinely copies from
//     user memory), so a broken chain ends the walk instead of faulting;
//   - errno is saved and restored.

#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace qp::obs {

/// Cumulative CPU-profiler counters (relaxed reads; exact totals).
struct CpuProfileTotals {
  uint64_t samples = 0;  ///< backtraces captured into the ring
  uint64_t dropped = 0;  ///< samples lost to a full ring
};

/// \brief Process-global sampling CPU profiler (one SIGPROF timer exists
/// per process, so this is a singleton by nature).
///
/// Thread-safety: Start/Stop/Reset serialize on an internal mutex;
/// FoldedText and totals() may run concurrently with sampling.
class CpuProfiler {
 public:
  struct Options {
    /// Sampling frequency in Hz of process CPU time (not wall time): an
    /// idle process produces no samples. 97 is prime, so periodic work
    /// cannot alias against the sampling grid.
    int hz = 97;
  };

  static CpuProfiler& Global();

  /// Installs the SIGPROF handler (first call only; the handler stays
  /// installed for the process lifetime so a straggling signal after Stop
  /// can never hit SIG_DFL and kill the process) and arms the interval
  /// timer. AlreadyExists when running.
  Status Start(const Options& options);
  Status Start() { return Start(Options()); }

  /// Disarms the timer. Samples already in the ring survive for the next
  /// drain. Idempotent.
  void Stop();

  bool running() const;

  /// Drops every folded stack and zeroes the totals — the start of a fresh
  /// observation window (/pprofz does this for on-demand captures).
  void Reset();

  /// Drains the ring and renders the fold table as collapsed-stack text,
  /// symbolizing lazily: `a;b;c 42` per unique stack, root first.
  /// Cumulative since the last Reset().
  std::string FoldedText();

  CpuProfileTotals totals() const;

 private:
  CpuProfiler() = default;
};

/// Cumulative heap-sampler counters. `sampled_*` count what the sampler
/// actually caught; `estimated_*` scale each sample by its weight.
struct HeapProfileTotals {
  uint64_t sampled_allocs = 0;
  uint64_t sampled_bytes = 0;          ///< raw bytes of sampled allocations
  uint64_t estimated_alloc_bytes = 0;  ///< weighted cumulative allocation
  uint64_t live_sampled_bytes = 0;     ///< raw bytes of still-live samples
  uint64_t live_estimated_bytes = 0;   ///< weighted live heap estimate
};

/// \brief Process-global sampling heap profiler over the interposed
/// operator new/delete (compiled out under ASan/TSan — Available()).
class HeapProfiler {
 public:
  static HeapProfiler& Global();

  /// True when this build interposes operator new/delete. When false,
  /// Enable() is a no-op and every total stays 0.
  static bool Available();

  /// Starts sampling roughly one allocation per `mean_sample_bytes`
  /// allocated per thread (geometric intervals). Already-live allocations
  /// are not retroactively sampled.
  void Enable(uint64_t mean_sample_bytes = 512 * 1024);

  /// Stops sampling new allocations. Live sampled pointers keep their
  /// records until freed (their frees are still matched), so live-byte
  /// attribution stays correct across Disable.
  void Disable();

  bool enabled() const;

  /// Forgets every record and zeroes the totals. Only safe semantics-wise
  /// when callers accept losing attribution for currently-live sampled
  /// pointers (their later frees become no-ops); /allocz never calls this.
  void Reset();

  /// Collapsed-stack text. `live` weights each stack by estimated live
  /// bytes; otherwise by estimated cumulative allocated bytes.
  std::string FoldedText(bool live = true);

  HeapProfileTotals totals() const;

 private:
  HeapProfiler() = default;
};

/// The /contentionz body: one line per common::ContentionRegistry site —
/// acquisitions, contended acquisitions, total/max wait and the wait-time
/// histogram buckets.
std::string ContentionText();

/// Aggregate lock-contention totals across every site (the
/// qp_prof_lock_* families).
struct ContentionTotals {
  uint64_t acquisitions = 0;
  uint64_t contentions = 0;
  double wait_seconds = 0.0;
};
ContentionTotals ContentionTotalsNow();

/// Best-effort symbolization of one program counter: demangled function
/// name when dladdr resolves it (the build exports dynamic symbols via
/// CMAKE_ENABLE_EXPORTS precisely so it can), else "module+0xoff", else a
/// hex address. Exposed for tests.
std::string SymbolizePc(const void* pc);

namespace internal {
/// Frame-pointer stack walk from the CALLER's context: fills `pcs` with up
/// to `max` return addresses, skipping `skip` innermost frames. Safe
/// against broken chains (page-probe + validation); NOT the signal-context
/// entry point, but shares its walker. Exposed for tests.
int WalkStackFromHere(const void** pcs, int max, int skip);
}  // namespace internal

}  // namespace qp::obs
