// Structured per-query tracing: a TraceSpan tree records what a pipeline
// run actually did — one span per stage / operator / subquery, each with a
// name, wall time, key/value attributes and child spans.
//
// Determinism contract: everything in a span except its `seconds` field is
// a deterministic function of the inputs — names, attributes and children
// are identical at every thread count and on every run over the same data.
// Renders therefore come in two flavors: ToString(false) (the default)
// omits timings and is byte-identical across thread counts, which is what
// the EXPLAIN ANALYZE differential tests assert; ToString(true) decorates
// each line with attributes and wall time.
//
// Concurrency model: a span is NOT internally synchronized. Parallel
// regions never append to a shared span directly; instead the fan-out site
// preallocates one span slot per task (see MakeSlots), each task records
// into its own slot, and the slots are adopted into the parent in slot
// order after the join — the same merge-in-index-order discipline the
// morsel executor uses for row outputs.

#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace qp::obs {

/// \brief One node of a trace tree.
///
/// Move-only (children are held by unique_ptr so AddChild can hand out
/// pointers that stay valid while later children are appended).
class TraceSpan {
 public:
  TraceSpan() = default;
  explicit TraceSpan(std::string name) : name_(std::move(name)) {}

  TraceSpan(TraceSpan&&) = default;
  TraceSpan& operator=(TraceSpan&&) = default;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Parallel-track hint for trace export: 0 (the default) renders on the
  /// parent's track, i > 0 marks this span as slot i of a parallel fan-out
  /// and TraceToChromeJson gives it its own track (tid). Fan-out sites set
  /// it from the slot index in BOTH their parallel and serial branches, so
  /// it is part of the deterministic shape (SameShape compares it).
  size_t track() const { return track_; }
  void set_track(size_t track) { track_ = track; }

  /// Wall time of the span. Excluded from deterministic renders and from
  /// SameShape — it is the only field allowed to vary between runs.
  double seconds() const { return seconds_; }
  void set_seconds(double s) { seconds_ = s; }

  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }
  void AddAttr(std::string key, std::string value);
  void AddAttr(std::string key, const char* value);
  void AddAttr(std::string key, size_t value);
  void AddAttr(std::string key, double value);

  /// Appends a child span and returns a pointer that remains valid while
  /// further children are appended (children are heap-allocated).
  TraceSpan* AddChild(std::string name);
  /// Moves an externally built span (e.g. a parallel task's slot) into the
  /// children, preserving append order.
  TraceSpan* Adopt(TraceSpan&& child);

  size_t num_children() const { return children_.size(); }
  const TraceSpan& child(size_t i) const { return *children_[i]; }
  TraceSpan& child(size_t i) { return *children_[i]; }

  /// Transplants this span's children (e.g. from a privately owned root
  /// into a caller-provided sink): TakeChildren empties this span and
  /// AdoptChildren appends the batch preserving order. This is how
  /// serve::Session records a query-log trace and still honors the caller's
  /// PersonalizeOptions::trace in one pass.
  std::vector<std::unique_ptr<TraceSpan>> TakeChildren() {
    return std::move(children_);
  }
  void AdoptChildren(std::vector<std::unique_ptr<TraceSpan>> children) {
    for (auto& child : children) children_.push_back(std::move(child));
  }

  /// Renders the subtree, one line per span, children indented two spaces.
  /// `analyze` additionally prints "(k=v, ...)" attributes and "[x.xxx ms]"
  /// wall times; without it the output is the deterministic plan shape.
  /// The root's own line is included; use RenderChildren to skip it.
  std::string ToString(bool analyze = false) const;
  /// Renders only the children (the usual case when the root is a synthetic
  /// per-call wrapper).
  std::string RenderChildren(bool analyze = false) const;

  /// Structural equality ignoring every `seconds` field: names, attrs and
  /// children must match recursively. This is the cross-thread-count
  /// determinism predicate the tests assert.
  bool SameShape(const TraceSpan& other) const;

  /// Preallocates `n` spans for a parallel fan-out: task i records into
  /// slot i, then the caller adopts the slots in index order.
  static std::vector<TraceSpan> MakeSlots(size_t n) {
    return std::vector<TraceSpan>(n);
  }

 private:
  void Render(bool analyze, int indent, std::string* out) const;

  std::string name_;
  double seconds_ = 0.0;
  size_t track_ = 0;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<std::unique_ptr<TraceSpan>> children_;
};

/// RAII timer: stamps `span->seconds()` with the elapsed wall time on
/// destruction (or on Stop). A null span makes it a no-op, so call sites
/// can time unconditionally.
class SpanTimer {
 public:
  explicit SpanTimer(TraceSpan* span)
      : span_(span), start_(std::chrono::steady_clock::now()) {}
  ~SpanTimer() { Stop(); }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  void Stop() {
    if (span_ == nullptr) return;
    span_->set_seconds(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
    span_ = nullptr;
  }

 private:
  TraceSpan* span_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace qp::obs
