#include "obs/sliding_histogram.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

namespace qp::obs {
namespace {

/// floor(now / slice) as an integer slice index; negative times (possible
/// with exotic injected clocks) floor toward -inf so rotation stays
/// monotone.
int64_t SliceIndex(double now, double slice_seconds) {
  return static_cast<int64_t>(std::floor(now / slice_seconds));
}

/// How many of the most recent slices cover `window_seconds`, including the
/// current partial slice, clamped to the ring size.
size_t SlicesFor(double window_seconds, double slice_seconds,
                 size_t num_slices) {
  if (window_seconds <= 0) return 1;  // the current slice alone
  const double exact = window_seconds / slice_seconds;
  const auto whole = static_cast<size_t>(std::ceil(exact));
  return std::min(std::max<size_t>(whole, 1), num_slices);
}

}  // namespace

double MonotonicClock() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// SlidingCounter

SlidingCounter::SlidingCounter(double slice_seconds, size_t num_slices,
                               std::function<double()> clock)
    : slice_seconds_(slice_seconds > 0 ? slice_seconds : 1.0),
      clock_(std::move(clock)),
      cells_(std::max<size_t>(num_slices, 1), 0) {
  head_slice_ = SliceIndex(clock_(), slice_seconds_);
}

void SlidingCounter::RotateLocked(double now) const {
  const int64_t slice = SliceIndex(now, slice_seconds_);
  if (slice <= head_slice_) return;  // same slice, or a clock that stalled
  const int64_t advance = slice - head_slice_;
  if (advance >= static_cast<int64_t>(cells_.size())) {
    // The whole ring aged out; cheaper to wipe than to walk.
    std::fill(cells_.begin(), cells_.end(), 0);
    head_slice_ = slice;
    return;
  }
  for (int64_t i = 0; i < advance; ++i) {
    head_ = (head_ + 1) % cells_.size();
    cells_[head_] = 0;
  }
  head_slice_ = slice;
}

void SlidingCounter::Add(uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  RotateLocked(clock_());
  cells_[head_] += delta;
}

uint64_t SlidingCounter::WindowTotal(double window_seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  RotateLocked(clock_());
  const size_t n = SlicesFor(window_seconds, slice_seconds_, cells_.size());
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += cells_[(head_ + cells_.size() - i) % cells_.size()];
  }
  return total;
}

// ---------------------------------------------------------------------------
// SlidingHistogram

SlidingHistogram::SlidingHistogram(std::vector<double> bounds,
                                   double slice_seconds, size_t num_slices,
                                   std::function<double()> clock)
    : bounds_(std::move(bounds)),
      slice_seconds_(slice_seconds > 0 ? slice_seconds : 1.0),
      clock_(std::move(clock)),
      slices_(std::max<size_t>(num_slices, 1)) {
  for (Slice& s : slices_) s.buckets.assign(bounds_.size() + 1, 0);
  head_slice_ = SliceIndex(clock_(), slice_seconds_);
}

void SlidingHistogram::RotateLocked(double now) const {
  const int64_t slice = SliceIndex(now, slice_seconds_);
  if (slice <= head_slice_) return;
  const int64_t advance = slice - head_slice_;
  auto clear = [](Slice& s) {
    std::fill(s.buckets.begin(), s.buckets.end(), 0);
    s.count = 0;
    s.sum = 0.0;
  };
  if (advance >= static_cast<int64_t>(slices_.size())) {
    for (Slice& s : slices_) clear(s);
    head_slice_ = slice;
    return;
  }
  for (int64_t i = 0; i < advance; ++i) {
    head_ = (head_ + 1) % slices_.size();
    clear(slices_[head_]);
  }
  head_slice_ = slice;
}

void SlidingHistogram::Observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  RotateLocked(clock_());
  Slice& s = slices_[head_];
  // Same bucket rule as Histogram::BucketFor: first bound >= value, else
  // the +Inf bucket.
  size_t b = bounds_.size();
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      b = i;
      break;
    }
  }
  ++s.buckets[b];
  ++s.count;
  s.sum += value;
}

Histogram::Snapshot SlidingHistogram::WindowSnapshot(
    double window_seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  RotateLocked(clock_());
  Histogram::Snapshot snap;
  snap.buckets.assign(bounds_.size() + 1, 0);
  const size_t n = SlicesFor(window_seconds, slice_seconds_, slices_.size());
  for (size_t i = 0; i < n; ++i) {
    const Slice& s = slices_[(head_ + slices_.size() - i) % slices_.size()];
    for (size_t b = 0; b < snap.buckets.size(); ++b) {
      snap.buckets[b] += s.buckets[b];
    }
    snap.count += s.count;
    snap.sum += s.sum;
  }
  return snap;
}

double SlidingHistogram::WindowQuantile(double window_seconds,
                                        double p) const {
  return Histogram::QuantileOf(WindowSnapshot(window_seconds), bounds_, p);
}

// ---------------------------------------------------------------------------
// SloTracker

SloTracker::SloTracker(Options options)
    : options_(std::move(options)),
      window_total_(options_.slice_seconds, options_.num_slices,
                    options_.clock),
      window_good_(options_.slice_seconds, options_.num_slices,
                   options_.clock) {}

void SloTracker::Record(double latency_seconds) {
  const bool good = latency_seconds < options_.threshold_seconds;
  window_total_.Add(1);
  total_.Increment();
  if (good) {
    window_good_.Add(1);
    good_.Increment();
  }
}

void SloTracker::RecordBad() {
  window_total_.Add(1);
  total_.Increment();
}

SloTracker::Window SloTracker::Snapshot(double window_seconds) const {
  Window w;
  w.total = window_total_.WindowTotal(window_seconds);
  w.good = window_good_.WindowTotal(window_seconds);
  // Under concurrent recording good can momentarily read ahead of total
  // (two separate counters); clamp rather than report attainment > 1.
  w.good = std::min(w.good, w.total);
  w.attainment =
      w.total == 0 ? 1.0 : static_cast<double>(w.good) / w.total;
  const double budget = 1.0 - options_.objective;
  w.burn_rate = budget > 0 ? (1.0 - w.attainment) / budget : 0.0;
  return w;
}

std::string SloTracker::Describe() const {
  const Window w1 = Snapshot(60.0);
  const Window w5 = Snapshot(300.0);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "slo target=latency<%.1fms objective=%.2f%% | "
                "1m: %llu/%llu good attainment=%.4f burn=%.2f | "
                "5m: %llu/%llu good attainment=%.4f burn=%.2f",
                options_.threshold_seconds * 1e3, options_.objective * 100.0,
                static_cast<unsigned long long>(w1.good),
                static_cast<unsigned long long>(w1.total), w1.attainment,
                w1.burn_rate, static_cast<unsigned long long>(w5.good),
                static_cast<unsigned long long>(w5.total), w5.attainment,
                w5.burn_rate);
  return buf;
}

}  // namespace qp::obs
