// Flight recorder: a bounded MPSC-style event ring capturing the most
// recent notable events system-wide — completed top-level spans, error
// Statuses at their origination point, and free-form notes — so that when
// something goes wrong the last N events are dumpable on demand (the SQL
// shell's \flight command) or from a Status failure path, without having
// had verbose logging enabled beforehand.
//
// Error capture uses the qp::SetStatusListener hook (dependency inversion:
// qp::common cannot depend on qp::obs, so the Status constructor notifies
// an installed function pointer and CaptureStatusErrors points it here).
// The listener fires at ERROR ORIGINATION — every non-OK Status built from
// code+message — which deliberately includes errors that a caller later
// handles; the recorder answers "what happened recently", not "what
// escaped".

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/ring.h"
#include "obs/trace.h"

namespace qp::obs {

enum class FlightEventKind {
  kSpan,   ///< a completed top-level span (name + wall time)
  kError,  ///< a non-OK Status origination (code name + message)
  kNote,   ///< free-form annotation from a subsystem
};

const char* FlightEventKindName(FlightEventKind kind);

/// \brief One entry of the flight recorder ring.
struct FlightEvent {
  FlightEventKind kind = FlightEventKind::kNote;
  std::string source;  ///< subsystem that recorded it ("serve", "exec", ...)
  std::string detail;  ///< span name, status string, or note text
  double seconds = 0.0;  ///< span wall time; 0 for errors/notes

  /// "kind source: detail [x.xxx ms]" (the bracket only for spans).
  std::string ToString() const;
};

/// \brief Bounded ring of recent FlightEvents.
///
/// Thread safety: Record and Snapshot are safe from any thread (see
/// OverwriteRing). CaptureStatusErrors installs/removes a process-global
/// hook and should be toggled from one place (typically main or the
/// serving context owner).
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = 256);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(FlightEventKind kind, std::string source, std::string detail,
              double seconds = 0.0);
  /// Records a completed span (name + seconds) under `source`.
  void RecordSpan(const TraceSpan& span, std::string source);

  /// Starts/stops mirroring every non-OK Status origination into this
  /// recorder via qp::SetStatusListener. Only one recorder can capture at
  /// a time: enabling steals the hook, disabling releases it only if this
  /// recorder still owns it. The destructor auto-disables.
  void CaptureStatusErrors(bool enable);

  /// Retained events, oldest first.
  std::vector<FlightEvent> Snapshot() const;

  /// Header line (seen/retained) plus one ToString line per event.
  std::string Dump() const;

  uint64_t seen() const { return ring_.seen(); }
  size_t capacity() const { return ring_.capacity(); }

  /// Process-wide default instance (capacity 256), used by the SQL shell
  /// and anything that wants a recorder without plumbing one through.
  static FlightRecorder& Global();

 private:
  OverwriteRing<FlightEvent> ring_;
  bool capturing_ = false;
};

}  // namespace qp::obs
