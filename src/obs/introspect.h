// Embedded, dependency-free HTTP/1.1 introspection server — the live
// window into a serving process. One of these runs inside a ServingContext
// when Options::introspect_port >= 0 and serves the standard endpoint set
// (/metrics, /metrics.json, /healthz, /statusz, /flightz, /tracez); the
// endpoint bodies themselves are registered by the owner as handlers, so
// this class knows HTTP and threads but nothing about metrics or sessions.
//
// Protocol scope — deliberately tiny: GET only, HTTP/1.1,
// `Connection: close` on every response (one request per connection),
// no TLS, no chunked encoding, request line + headers capped at 8 KiB.
// That is exactly what `curl`, a Prometheus scraper, or a health prober
// needs, and nothing a public-facing server would need. The listener binds
// 127.0.0.1 only; exposing it beyond the host is a proxy's job.
//
// Threading: Start() binds + listens, then parks a blocking accept loop on
// an owned common::ThreadPool via Submit. Each accepted connection is
// handled by another Submit, so slow readers never block accept and
// `num_handler_threads` requests can be served concurrently (the /metrics
// scrape under bench_load --introspect runs against live traffic).
//
// Shutdown discipline: ThreadPool's destructor DRAINS — every submitted
// task runs to completion first — so Stop() must unblock the accept loop
// before the pool can die. It sets `stopping_`, then shutdown()+close()es
// the listening socket, which makes the blocked accept return with an
// error; the loop sees stopping_ and exits. Only then is the pool
// destroyed. Stop() is idempotent and runs from the destructor.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"

namespace qp::obs {

/// What a handler returns: status line + content type + body. The server
/// adds Content-Length and Connection: close.
struct HttpResponse {
  int status = 200;             ///< 200, 404, 503, ...
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// What a handler receives: the bare path plus the URL-decoded query
/// parameters, in request order (/pprofz?seconds=5 needs them; /metrics
/// ignores them).
struct HttpRequest {
  std::string path;  ///< query string already stripped
  std::vector<std::pair<std::string, std::string>> params;

  /// First value of `key`, or nullptr when absent.
  const std::string* Param(const std::string& key) const;
  /// Integer spelling of Param(key); `fallback` when absent or non-numeric.
  int IntParam(const std::string& key, int fallback) const;
};

/// Parses a raw query string ("a=1&b=x%20y&flag") into decoded key/value
/// pairs: '+' and %XX decode in both keys and values, a key without '=' maps
/// to "", malformed %-escapes pass through literally. Exposed for tests.
std::vector<std::pair<std::string, std::string>> ParseQueryParams(
    const std::string& query);

/// \brief Minimal localhost HTTP server over registered GET paths.
class IntrospectionServer {
 public:
  struct Options {
    /// TCP port to bind on 127.0.0.1. 0 asks the kernel for an ephemeral
    /// port (read it back via port() — how tests avoid collisions).
    int port = 0;
    /// Threads for accept + connection handling. The accept loop occupies
    /// one permanently, so this must be >= 2 for the server to answer at
    /// all; values below are raised to 2.
    size_t num_threads = 4;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  IntrospectionServer() = default;
  ~IntrospectionServer();

  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

  /// Registers `handler` for exact-match GET `path` (e.g. "/metrics").
  /// Must be called before Start(); handlers run concurrently on pool
  /// threads and must be thread-safe.
  void Handle(std::string path, Handler handler);

  /// Binds, listens and launches the accept loop. Returns false (with the
  /// reason in *error if given) when the socket can't be bound — sandboxed
  /// environments may forbid even localhost sockets, and callers are
  /// expected to degrade gracefully (tests GTEST_SKIP, ServingContext
  /// logs and continues without introspection).
  bool Start(const Options& options, std::string* error = nullptr);

  /// Unblocks accept, drains in-flight handlers, joins the pool. Safe to
  /// call twice or without a successful Start().
  void Stop();

  bool running() const { return running_; }
  /// The bound port (the kernel's pick when Options::port was 0); -1 when
  /// not running.
  int port() const { return port_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Parses the request line out of `request`, dispatches to the handler
  /// table, and writes one full response to `fd`.
  void WriteResponse(int fd, const HttpResponse& response);

  std::vector<std::pair<std::string, Handler>> handlers_;

  std::unique_ptr<common::ThreadPool> pool_;
  std::atomic<bool> stopping_{false};
  bool running_ = false;
  /// Atomic: the accept loop reads it while Stop() invalidates it.
  std::atomic<int> listen_fd_{-1};
  int port_ = -1;
  std::mutex stop_mu_;  ///< serializes Stop() against itself
};

}  // namespace qp::obs
