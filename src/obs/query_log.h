// Structured query log: a fixed-capacity, lock-free ring of per-request
// records written by serve::Session::Personalize. Each record captures who
// asked what (user id, query fingerprint), how it was answered (algorithm,
// K/L, selected preferences, cache hit/miss per serving stage), what it
// cost (rows scanned/joined/materialized, subqueries, thread-seconds, and
// a per-stage latency breakdown measured with plain timers — logging never
// forces trace-tree construction), and why it was retained (probabilistic
// sample and/or slow-query threshold).
//
// Determinism contract (inherited from TraceSpan): every field of a
// retained record EXCEPT the *_seconds timings and the timing-derived
// `slow` flag is a deterministic function of the request stream — byte
// identical at every thread count. DeterministicString() renders exactly
// that subset; the differential tests diff it across 1/2/8 threads.
//
// Retention: each request is admitted if the deterministic sampler keeps
// it (hash of fingerprint and sequence number against sample_rate — NOT
// rand(), so retention is reproducible) OR it is slow. "Slow" means
// total_seconds >= slow_seconds when configured, else an adaptive
// threshold: the p99 (configurable) of the log's own latency histogram
// once enough observations exist (Histogram::Quantile).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/ring.h"

namespace qp::obs {

/// \brief One per-request record of the query log.
///
/// The caller (serve::Session) fills every field except `seq`, `sampled`
/// and `slow`, which QueryLog::Record assigns on admission.
struct QueryLogRecord {
  // --- identity ---
  uint64_t seq = 0;          ///< admission sequence (assigned by Record)
  std::string user_id;
  std::string fingerprint;   ///< deterministic hash of query + options

  // --- how it was answered ---
  std::string algorithm;     ///< "spa" or "ppa"
  size_t k = 0;              ///< top-K preferences selected
  size_t l = 0;              ///< integration depth L
  size_t selected_preferences = 0;
  bool state_reused = false;        ///< session state epoch still valid
  /// How the session state was obtained: "reused" | "built" |
  /// "stats_refresh" | "repaired" | "rebuilt" (serve::StateOutcomeName).
  /// Distinguishes a delta-sized graph repair from a wholesale rebuild.
  std::string state_outcome = "reused";
  bool selection_cache_hit = false;
  bool plan_cache_hit = false;

  // --- what it produced / cost ---
  size_t rows_returned = 0;
  size_t subqueries_executed = 0;
  size_t rows_scanned = 0;
  size_t rows_joined = 0;
  size_t rows_materialized = 0;
  /// Deadline/cancellation cut the answer to a progressive prefix
  /// (AnswerStats::partial); rounds_run is the PPA cut round.
  bool partial = false;
  size_t rounds_run = 0;
  /// Access-path choices the executor made for this request, one count per
  /// base source (AccessPathKind). The CHOICE is logical — made from the
  /// query shape and estimated rows, never from whether an index actually
  /// existed — so these are deterministic and part of both projections.
  size_t paths_scan = 0;
  size_t paths_probe = 0;
  size_t paths_range = 0;
  /// Mutations replayed by an incremental state repair (delta size); 0 for
  /// every other state outcome. Deterministic for a fixed request stream
  /// but legitimately different between incremental and cold sessions, so
  /// it joins DeterministicString (pinned across thread counts) and NOT
  /// AnswerIdentityString (diffed incremental-vs-cold).
  size_t repaired_mutations = 0;

  // --- admission (filled only for scheduler-dispatched requests) ---
  /// Request went through serve::Scheduler. Direct Session::Personalize
  /// calls leave the admission block at its defaults, which render
  /// identically to pre-scheduler logs.
  bool scheduled = false;
  std::string lane;          ///< "interactive" | "normal" | "batch"
  size_t shard = 0;          ///< worker shard the user hashed to
  /// 0-based attempt number (>0 means retried). Timing-dependent under
  /// real failures, so ToString-only — but deterministic in tests that
  /// script failures.
  size_t attempt = 0;
  double queue_seconds = 0.0;  ///< admission -> dispatch wait (timing)

  // --- timings (excluded from the deterministic render) ---
  double total_seconds = 0.0;
  double state_seconds = 0.0;      ///< "session state" stage
  double selection_seconds = 0.0;  ///< "selection" stage
  double plan_seconds = 0.0;       ///< "plan" stage
  double execute_seconds = 0.0;    ///< "execute: spa|ppa" stage
  double thread_seconds = 0.0;     ///< summed task wall time across workers

  // --- retention (assigned by Record) ---
  bool sampled = false;  ///< kept by the deterministic sampler
  bool slow = false;     ///< kept by the slow-query threshold (timing-derived)

  /// Renders every deterministic field (everything except the *_seconds
  /// timings and `slow`), one `key=value` pair per field on a single line.
  /// Byte-identical across thread counts for the same request stream.
  std::string DeterministicString() const;

  /// The answer-identity subset of DeterministicString: who asked what and
  /// what came back — WITHOUT the cache-outcome fields (state_reused,
  /// state_outcome, cache hits). An incremental session that repairs its
  /// state and a cold session that rebuilds from scratch must agree on
  /// this projection byte for byte even though their cache outcomes
  /// legitimately differ; the churn differential tests diff it.
  std::string AnswerIdentityString() const;

  /// DeterministicString plus the timing fields and retention flags —
  /// the human-facing spelling used by Dump() and the shell's \log.
  std::string ToString() const;
};

/// \brief Fixed-capacity ring of QueryLogRecords with deterministic
/// sampling and a slow-query always-keep path.
///
/// Thread safety: Record and Snapshot may be called concurrently from any
/// number of threads (see OverwriteRing for the slot discipline).
class QueryLog {
 public:
  struct Options {
    size_t capacity = 1024;
    /// Fraction of requests retained by the sampler, in [0, 1]. 1.0 keeps
    /// everything; 0.0 keeps only slow queries.
    double sample_rate = 1.0;
    /// Fixed slow-query threshold in seconds. Unset selects the adaptive
    /// threshold (quantile of observed latency); <= 0 disables the slow
    /// path entirely when set.
    std::optional<double> slow_seconds;
    /// Adaptive threshold parameters: the threshold is
    /// Quantile(adaptive_quantile) of all observed total_seconds, active
    /// only once adaptive_min_count observations exist.
    uint64_t adaptive_min_count = 128;
    double adaptive_quantile = 0.99;
  };

  QueryLog();  ///< default Options
  explicit QueryLog(Options options);

  /// Admits one request: assigns `record.seq`, decides `sampled` / `slow`,
  /// feeds the latency histogram, and appends to the ring iff retained.
  /// Returns true when the record was retained.
  bool Record(QueryLogRecord record);

  /// The slow-query threshold currently in force: the configured
  /// slow_seconds if set, else the adaptive quantile estimate (infinity
  /// until adaptive_min_count observations exist).
  double SlowThreshold() const;

  /// Deterministic sampling decision for (fingerprint, seq) — exposed so
  /// tests can predict retention without replaying timings.
  bool WouldSample(const std::string& fingerprint, uint64_t seq) const;

  /// Retained records, oldest first.
  std::vector<QueryLogRecord> Snapshot() const;

  /// Human-readable dump of the retained records (ToString per line),
  /// newest last, with a header line summarizing seen/retained counts.
  std::string Dump() const;

  uint64_t seen() const { return seen_.load(std::memory_order_relaxed); }
  uint64_t retained() const {
    return retained_.load(std::memory_order_relaxed);
  }
  const Options& options() const { return options_; }

 private:
  Options options_;
  std::atomic<uint64_t> seen_{0};
  std::atomic<uint64_t> retained_{0};
  /// Latency of every seen request (not just retained ones) — the sample
  /// the adaptive slow threshold is estimated from.
  Histogram latency_;
  OverwriteRing<QueryLogRecord> ring_;
};

}  // namespace qp::obs
