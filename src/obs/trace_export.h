// Chrome trace-event / Perfetto export for TraceSpan trees.
//
// TraceToChromeJson renders any span tree as the JSON object form of the
// Chrome trace-event format ({"traceEvents": [...], "displayTimeUnit":
// "ms"}), loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each
// span becomes one complete ("ph":"X") event with microsecond ts/dur;
// process and thread names are emitted as "M" metadata events.
//
// TraceSpans record only durations, not absolute timestamps (by design —
// wall-clock starts would break the cross-thread-count determinism
// contract), so the exporter SYNTHESIZES a timeline: children of a span
// are laid out sequentially from the parent's start, except that a
// consecutive run of parallel-slot children (track() > 0, as tagged by
// MakeSlots fan-out sites) all start together at the fan-out point, each
// on its own synthetic thread (tid) so Perfetto renders them as
// overlapping tracks. Slot tids are allocated in tree-walk order, which
// makes the whole export a deterministic function of the span tree shape
// plus its recorded durations.

#pragma once

#include <string>

#include "obs/trace.h"

namespace qp::obs {

struct ChromeTraceOptions {
  /// Value of the process_name metadata event.
  std::string process_name = "qp";
  /// Emit span attributes as the event's "args" object.
  bool include_attrs = true;
  /// Skip the root span itself and lay out its children at ts 0 — the
  /// usual case when the root is a synthetic per-call wrapper.
  bool skip_root = false;
};

/// Renders `root` as Chrome trace-event JSON (object form). Always valid
/// JSON, even for an empty tree.
std::string TraceToChromeJson(const TraceSpan& root,
                              const ChromeTraceOptions& options = {});

}  // namespace qp::obs
