#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace qp::obs {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Splits a series name `base{labels}` into its base and the brace-wrapped
/// label block ("" when the name carries no labels).
void SplitSeries(const std::string& name, std::string* base,
                 std::string* labels) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
  } else {
    *base = name.substr(0, brace);
    *labels = name.substr(brace);
  }
}

/// Re-wraps a series' label block with an extra label appended (used for
/// histogram `le` buckets): `{a="b"}` + `le="0.1"` -> `{a="b",le="0.1"}`.
std::string WithLabel(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return "{" + extra + "}";
  return labels.substr(0, labels.size() - 1) + "," + extra + "}";
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      count_(0),
      sum_bits_(0) {}

size_t Histogram::BucketFor(double value) const {
  return static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
}

void Histogram::Observe(double value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t old_bits = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    double old_sum;
    static_assert(sizeof(old_sum) == sizeof(old_bits));
    __builtin_memcpy(&old_sum, &old_bits, sizeof(old_sum));
    double new_sum = old_sum + value;
    uint64_t new_bits;
    __builtin_memcpy(&new_bits, &new_sum, sizeof(new_bits));
    if (sum_bits_.compare_exchange_weak(old_bits, new_bits,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.buckets.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    snap.buckets.push_back(b.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  __builtin_memcpy(&snap.sum, &bits, sizeof(snap.sum));
  return snap;
}

double Histogram::QuantileOf(const Snapshot& snap,
                             const std::vector<double>& bounds, double p) {
  if (snap.count == 0 || bounds.empty()) return 0.0;
  p = std::min(1.0, std::max(0.0, p));
  const double rank = p * static_cast<double>(snap.count);
  double cumulative = 0.0;
  // Walk the FINITE buckets only; interpolation needs both edges.
  const size_t finite = std::min(bounds.size(), snap.buckets.size());
  for (size_t i = 0; i < finite; ++i) {
    const double next = cumulative + static_cast<double>(snap.buckets[i]);
    if (next >= rank && snap.buckets[i] > 0) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double within =
          (rank - cumulative) / static_cast<double>(snap.buckets[i]);
      return lo + (hi - lo) * within;
    }
    cumulative = next;
  }
  // The rank lands in the implicit +Inf overflow bucket: there is no finite
  // upper edge to interpolate toward, so clamp to the highest finite bound.
  // This makes the estimate a LOWER bound on the true quantile — explicit
  // and documented rather than an accident of loop structure (see header).
  return bounds.back();
}

double Histogram::Quantile(double p) const {
  return QuantileOf(snapshot(), bounds_, p);
}

std::vector<double> DefaultLatencyBuckets() {
  // 1e-5s .. 10s, x10 per decade with 1/2.5/5 sub-steps.
  std::vector<double> bounds;
  for (double decade = 1e-5; decade < 10.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.5);
    bounds.push_back(decade * 5.0);
  }
  bounds.push_back(10.0);
  return bounds;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string LabeledName(const std::string& base,
                        const std::vector<MetricLabel>& labels) {
  if (labels.empty()) return base;
  std::string out = base + "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].key + "=\"" + EscapeLabelValue(labels[i].value) + "\"";
  }
  out += "}";
  return out;
}

namespace {

/// The cardinality-overflow spelling of a labeled series: same keys, every
/// value replaced by __other__. Parses the escaped label block (the only
/// unescaped '"' characters are the value delimiters).
std::string OverflowName(const std::string& name) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) return name;
  std::string out = name.substr(0, brace + 1);
  size_t i = brace + 1;
  while (i < name.size() && name[i] != '}') {
    const size_t eq = name.find('=', i);
    if (eq == std::string::npos || name.size() <= eq + 1 ||
        name[eq + 1] != '"') {
      return name;  // not a label block we built; leave the name alone
    }
    out += name.substr(i, eq - i) + "=\"__other__\"";
    size_t v = eq + 2;  // skip past the opening quote
    while (v < name.size() &&
           !(name[v] == '"' && name[v - 1] != '\\')) {
      ++v;
    }
    i = v + 1;
    if (i < name.size() && name[i] == ',') {
      out += ",";
      ++i;
    }
  }
  out += "}";
  return out;
}

}  // namespace

size_t MetricsRegistry::LabeledCountLocked(const std::string& base) const {
  const std::string prefix = base + "{";
  size_t n = 0;
  for (const auto& entry : counters_) {
    if (entry.name.compare(0, prefix.size(), prefix) == 0 &&
        entry.name != OverflowName(entry.name)) {
      ++n;
    }
  }
  for (const auto& entry : gauges_) {
    if (entry.name.compare(0, prefix.size(), prefix) == 0 &&
        entry.name != OverflowName(entry.name)) {
      ++n;
    }
  }
  for (const auto& entry : histograms_) {
    if (entry.name.compare(0, prefix.size(), prefix) == 0 &&
        entry.name != OverflowName(entry.name)) {
      ++n;
    }
  }
  return n;
}

std::string MetricsRegistry::CappedName(const std::string& name,
                                        bool exists) const {
  if (exists || label_limit_ == 0) return name;
  const size_t brace = name.find('{');
  if (brace == std::string::npos) return name;  // unlabeled: never capped
  const std::string overflow = OverflowName(name);
  if (overflow == name) return name;  // already the overflow series
  if (LabeledCountLocked(name.substr(0, brace)) < label_limit_) return name;
  return overflow;
}

void MetricsRegistry::SetLabelCardinalityLimit(size_t limit) {
  std::lock_guard<std::mutex> lock(mu_);
  label_limit_ = limit;
}

size_t MetricsRegistry::label_cardinality_limit() const {
  std::lock_guard<std::mutex> lock(mu_);
  return label_limit_;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : counters_) {
    if (entry.name == name) return entry.counter.get();
  }
  const std::string capped = CappedName(name, /*exists=*/false);
  if (capped != name) {
    for (auto& entry : counters_) {
      if (entry.name == capped) return entry.counter.get();
    }
  }
  counters_.push_back({capped, help, std::make_unique<Counter>()});
  return counters_.back().counter.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : histograms_) {
    if (entry.name == name) return entry.histogram.get();
  }
  const std::string capped = CappedName(name, /*exists=*/false);
  if (capped != name) {
    for (auto& entry : histograms_) {
      if (entry.name == capped) return entry.histogram.get();
    }
  }
  histograms_.push_back(
      {capped, help, std::make_unique<Histogram>(std::move(bounds))});
  return histograms_.back().histogram.get();
}

Gauge* MetricsRegistry::GetGaugeImpl(const std::string& name,
                                     const std::string& help,
                                     bool as_counter) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : gauges_) {
    if (entry.name == name) return entry.gauge.get();
  }
  const std::string capped = CappedName(name, /*exists=*/false);
  if (capped != name) {
    for (auto& entry : gauges_) {
      if (entry.name == capped) return entry.gauge.get();
    }
  }
  gauges_.push_back({capped, help, std::make_unique<Gauge>(), as_counter});
  return gauges_.back().gauge.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  return GetGaugeImpl(name, help, /*as_counter=*/false);
}

Gauge* MetricsRegistry::GetCounterGauge(const std::string& name,
                                        const std::string& help) {
  return GetGaugeImpl(name, help, /*as_counter=*/true);
}

Counter* MetricsRegistry::GetCounter(const std::string& base,
                                     const std::vector<MetricLabel>& labels,
                                     const std::string& help) {
  return GetCounter(LabeledName(base, labels), help);
}

Gauge* MetricsRegistry::GetGauge(const std::string& base,
                                 const std::vector<MetricLabel>& labels,
                                 const std::string& help) {
  return GetGauge(LabeledName(base, labels), help);
}

size_t MetricsRegistry::AddCollectionHook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(hooks_mu_);
  const size_t id = next_hook_id_++;
  hooks_.emplace_back(id, std::move(hook));
  return id;
}

void MetricsRegistry::RemoveCollectionHook(size_t id) {
  std::lock_guard<std::mutex> lock(hooks_mu_);
  for (auto it = hooks_.begin(); it != hooks_.end(); ++it) {
    if (it->first == id) {
      hooks_.erase(it);
      return;
    }
  }
}

void MetricsRegistry::RunCollectionHooks() const {
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(hooks_mu_);
    hooks.reserve(hooks_.size());
    for (const auto& [id, hook] : hooks_) hooks.push_back(hook);
  }
  for (const auto& hook : hooks) hook();
}

Histogram* MetricsRegistry::GetHistogram(
    const std::string& base, const std::vector<MetricLabel>& labels,
    std::vector<double> bounds, const std::string& help) {
  return GetHistogram(LabeledName(base, labels), std::move(bounds), help);
}

namespace {

/// Indices of `entries` grouped by metric base name in first-seen order, so
/// every series of a family lands in ONE exposition block with ONE
/// "# TYPE" line even when registrations of different bases interleaved
/// (e.g. the per-window SLO gauges register attainment/burn/p50/p99 for
/// "1m" and then again for "5m"). The Prometheus text format requires
/// this: parsers reject a family that appears in two blocks.
template <typename Entry>
std::vector<std::pair<std::string, std::vector<size_t>>> GroupByBase(
    const std::vector<Entry>& entries) {
  std::vector<std::pair<std::string, std::vector<size_t>>> groups;
  std::string base, labels;
  for (size_t i = 0; i < entries.size(); ++i) {
    SplitSeries(entries[i].name, &base, &labels);
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == base; });
    if (it == groups.end()) {
      groups.emplace_back(base, std::vector<size_t>{i});
    } else {
      it->second.push_back(i);
    }
  }
  return groups;
}

}  // namespace

std::string MetricsRegistry::RenderText() const {
  RunCollectionHooks();
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string base, labels;
  for (const auto& [family, indices] : GroupByBase(counters_)) {
    if (!counters_[indices.front()].help.empty()) {
      out += "# HELP " + family + " " + counters_[indices.front()].help + "\n";
    }
    out += "# TYPE " + family + " counter\n";
    for (size_t i : indices) {
      SplitSeries(counters_[i].name, &base, &labels);
      out +=
          base + labels + " " + std::to_string(counters_[i].counter->Value()) +
          "\n";
    }
  }
  for (const auto& [family, indices] : GroupByBase(gauges_)) {
    if (!gauges_[indices.front()].help.empty()) {
      out += "# HELP " + family + " " + gauges_[indices.front()].help + "\n";
    }
    // Counter-rendered gauges (GetCounterGauge) declare their family as a
    // counter; the first entry decides for the whole family.
    out += "# TYPE " + family +
           (gauges_[indices.front()].as_counter ? " counter\n" : " gauge\n");
    for (size_t i : indices) {
      SplitSeries(gauges_[i].name, &base, &labels);
      out += base + labels + " " + FormatDouble(gauges_[i].gauge->Value()) +
             "\n";
    }
  }
  for (const auto& [family, indices] : GroupByBase(histograms_)) {
    if (!histograms_[indices.front()].help.empty()) {
      out +=
          "# HELP " + family + " " + histograms_[indices.front()].help + "\n";
    }
    out += "# TYPE " + family + " histogram\n";
    for (size_t i : indices) {
      SplitSeries(histograms_[i].name, &base, &labels);
      Histogram::Snapshot snap = histograms_[i].histogram->snapshot();
      const std::vector<double>& bounds = histograms_[i].histogram->bounds();
      uint64_t cumulative = 0;
      for (size_t b = 0; b < snap.buckets.size(); ++b) {
        cumulative += snap.buckets[b];
        std::string le =
            b < bounds.size() ? FormatDouble(bounds[b]) : std::string("+Inf");
        out += base + "_bucket" + WithLabel(labels, "le=\"" + le + "\"") +
               " " + std::to_string(cumulative) + "\n";
      }
      out += base + "_sum" + labels + " " + FormatDouble(snap.sum) + "\n";
      out += base + "_count" + labels + " " + std::to_string(snap.count) +
             "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  RunCollectionHooks();
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (size_t i = 0; i < counters_.size(); ++i) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(counters_[i].name, &out);
    out += ":";
    out += std::to_string(counters_[i].counter->Value());
  }
  // Counter-rendered gauges belong with the counters in JSON too.
  for (size_t i = 0; i < gauges_.size(); ++i) {
    if (!gauges_[i].as_counter) continue;
    if (!first) out += ",";
    first = false;
    AppendJsonString(gauges_[i].name, &out);
    out += ":";
    out += FormatDouble(gauges_[i].gauge->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (size_t i = 0; i < gauges_.size(); ++i) {
    if (gauges_[i].as_counter) continue;
    if (!first) out += ",";
    first = false;
    AppendJsonString(gauges_[i].name, &out);
    out += ":";
    out += FormatDouble(gauges_[i].gauge->Value());
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < histograms_.size(); ++i) {
    if (i > 0) out += ",";
    AppendJsonString(histograms_[i].name, &out);
    Histogram::Snapshot snap = histograms_[i].histogram->snapshot();
    out += ":{\"count\":";
    out += std::to_string(snap.count);
    out += ",\"sum\":";
    out += FormatDouble(snap.sum);
    out += ",\"bounds\":[";
    const std::vector<double>& bounds = histograms_[i].histogram->bounds();
    for (size_t j = 0; j < bounds.size(); ++j) {
      if (j > 0) out += ",";
      out += FormatDouble(bounds[j]);
    }
    out += "],\"buckets\":[";
    for (size_t j = 0; j < snap.buckets.size(); ++j) {
      if (j > 0) out += ",";
      out += std::to_string(snap.buckets[j]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string RenderText(const MetricsRegistry& registry) {
  return registry.RenderText();
}

std::string RenderJson(const MetricsRegistry& registry) {
  return registry.RenderJson();
}

}  // namespace qp::obs
