// Process-wide metrics primitives: named lock-free counters and
// fixed-bucket histograms behind a registry, with Prometheus-style text
// exposition (RenderText) and a JSON snapshot (RenderJson).
//
// Naming scheme (see DESIGN.md "Observability"): snake_case with a
// component prefix and a unit/`_total` suffix — `qp_exec_rows_scanned_total`,
// `qp_serve_personalize_seconds`. A series may carry a fixed label set by
// registering the full series name `base{key="value"}`; series sharing a
// base name are grouped under one # TYPE header in the exposition.
//
// Concurrency: Counter::Increment and Histogram::Observe are lock-free
// (relaxed atomics — totals are exact, cross-metric ordering is not
// promised). Registration takes a mutex but returns stable pointers, so
// hot paths resolve a metric once and update it without ever touching the
// registry again. Renders read concurrently with updates and may observe a
// histogram mid-update (bucket totals are each exact; count/sum can be
// momentarily ahead of the buckets).

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qp::obs {

/// \brief Monotonic lock-free counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Fixed-bucket histogram with lock-free observation.
///
/// Buckets follow the Prometheus convention: bucket i counts observations
/// `<= bounds[i]` (cumulative rendering happens at exposition time; storage
/// is per-bucket), with an implicit +Inf bucket at the end.
class Histogram {
 public:
  /// `bounds` must be strictly increasing upper bounds; an empty vector
  /// leaves only the +Inf bucket.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  /// Index of the bucket `value` lands in (the first bound >= value, or
  /// the +Inf bucket). Exposed for the bucket-math tests.
  size_t BucketFor(double value) const;

  size_t num_buckets() const { return buckets_.size(); }
  const std::vector<double>& bounds() const { return bounds_; }

  /// A consistent-enough snapshot for rendering: per-bucket counts, total
  /// count and sum.
  struct Snapshot {
    std::vector<uint64_t> buckets;  ///< per-bucket (non-cumulative) counts
    uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;

  /// Estimates the p-quantile (p in [0, 1]) of the observed distribution the
  /// way Prometheus' histogram_quantile does: find the bucket the rank
  /// p * count falls in and interpolate linearly inside it (the first
  /// bucket's lower edge is 0). A rank landing in the +Inf bucket returns
  /// the highest finite bound; an empty histogram returns 0. This is the
  /// estimator behind QueryLog's adaptive slow-query threshold.
  double Quantile(double p) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  /// Sum of observations, stored as raw double bits and accumulated with a
  /// CAS loop (portable, unlike atomic<double>::fetch_add).
  std::atomic<uint64_t> sum_bits_{0};
};

/// Default latency buckets for wall-clock seconds: exponential from 10us
/// to ~10s, the range a Personalize call or an executor query can span.
std::vector<double> DefaultLatencyBuckets();

/// One label of a metric series, held raw (unescaped); escaping happens at
/// name-construction / exposition time.
struct MetricLabel {
  std::string key;
  std::string value;
};

/// Escapes a label value for Prometheus text exposition per the spec:
/// backslash -> \\, double quote -> \", newline -> \n.
std::string EscapeLabelValue(const std::string& value);

/// Builds the full series name `base{key="value",...}` with every value
/// escaped. This is THE way to register a series keyed by runtime data
/// (user ids, table names): raw ids with quotes, backslashes or newlines
/// would otherwise corrupt the exposition format.
std::string LabeledName(const std::string& base,
                        const std::vector<MetricLabel>& labels);

/// \brief Name -> metric registry with stable pointers.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it on first use.
  /// `help` is recorded on creation (later calls may pass ""). Pointers
  /// stay valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name, const std::string& help = "");

  /// Returns the histogram registered under `name`, creating it with
  /// `bounds` on first use (later calls reuse the existing buckets).
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds,
                          const std::string& help = "");

  /// Labeled spellings: the series name is LabeledName(base, labels) (label
  /// values escaped), and creation is subject to the cardinality cap — once
  /// `label_cardinality_limit()` distinct labeled series exist under `base`,
  /// NEW series are rerouted to the overflow series with every label value
  /// replaced by "__other__" (so a process serving millions of users exposes
  /// at most limit + 1 series per base, and no sample is ever dropped).
  /// Existing series keep resolving to their own pointer forever.
  Counter* GetCounter(const std::string& base,
                      const std::vector<MetricLabel>& labels,
                      const std::string& help = "");
  Histogram* GetHistogram(const std::string& base,
                          const std::vector<MetricLabel>& labels,
                          std::vector<double> bounds,
                          const std::string& help = "");

  /// Per-base cap on distinct labeled series (default 1024). The overflow
  /// series does not count against the cap. Applies to labeled creations
  /// through both the labeled API and raw `base{...}` names.
  void SetLabelCardinalityLimit(size_t limit);
  size_t label_cardinality_limit() const;

  /// Prometheus text exposition of every registered series, in
  /// registration order, grouped by base name.
  std::string RenderText() const;

  /// JSON snapshot: {"counters": {name: value, ...},
  /// "histograms": {name: {"count": n, "sum": s, "buckets": [...],
  /// "bounds": [...]}, ...}}.
  std::string RenderJson() const;

 private:
  struct CounterEntry {
    std::string name;
    std::string help;
    std::unique_ptr<Counter> counter;
  };
  struct HistogramEntry {
    std::string name;
    std::string help;
    std::unique_ptr<Histogram> histogram;
  };

  /// Applies the cardinality cap to `name` (must hold mu_): returns `name`
  /// unchanged while the base is under the limit or the series already
  /// exists, else the `__other__` overflow name.
  std::string CappedName(const std::string& name, bool exists) const;
  size_t LabeledCountLocked(const std::string& base) const;

  mutable std::mutex mu_;
  size_t label_limit_ = 1024;
  std::vector<CounterEntry> counters_;
  std::vector<HistogramEntry> histograms_;
};

/// Free-function spellings of the renders (the canonical API surface).
std::string RenderText(const MetricsRegistry& registry);
std::string RenderJson(const MetricsRegistry& registry);

}  // namespace qp::obs
