// Process-wide metrics primitives: named lock-free counters, last-value
// gauges and fixed-bucket histograms behind a registry, with
// Prometheus-style text exposition (RenderText) and a JSON snapshot
// (RenderJson). Gauges mirroring external state (RSS, live queue depths,
// windowed SLO attainment) are refreshed at scrape time through collection
// hooks (AddCollectionHook) run at the start of every render.
//
// Naming scheme (see DESIGN.md "Observability"): snake_case with a
// component prefix and a unit/`_total` suffix — `qp_exec_rows_scanned_total`,
// `qp_serve_personalize_seconds`. A series may carry a fixed label set by
// registering the full series name `base{key="value"}`; series sharing a
// base name are grouped under one # TYPE header in the exposition.
//
// Concurrency: Counter::Increment and Histogram::Observe are lock-free
// (relaxed atomics — totals are exact, cross-metric ordering is not
// promised). Registration takes a mutex but returns stable pointers, so
// hot paths resolve a metric once and update it without ever touching the
// registry again. Renders read concurrently with updates and may observe a
// histogram mid-update (bucket totals are each exact; count/sum can be
// momentarily ahead of the buckets).

#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qp::obs {

/// \brief Monotonic lock-free counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-value gauge: a double that can move both ways (queue depths,
/// session counts, attainment ratios, RSS). Set/Add are lock-free; Add uses
/// a CAS loop over the raw bits (atomic<double>::fetch_add is not portable).
class Gauge {
 public:
  void Set(double value) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    bits_.store(bits, std::memory_order_relaxed);
  }
  void Add(double delta) {
    uint64_t old_bits = bits_.load(std::memory_order_relaxed);
    while (true) {
      double old_value;
      std::memcpy(&old_value, &old_bits, sizeof(old_value));
      const double new_value = old_value + delta;
      uint64_t new_bits;
      std::memcpy(&new_bits, &new_value, sizeof(new_bits));
      if (bits_.compare_exchange_weak(old_bits, new_bits,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }
  double Value() const {
    const uint64_t bits = bits_.load(std::memory_order_relaxed);
    double out;
    std::memcpy(&out, &bits, sizeof(out));
    return out;
  }

 private:
  std::atomic<uint64_t> bits_{0};  ///< raw double bits; 0 == 0.0
};

/// \brief Fixed-bucket histogram with lock-free observation.
///
/// Buckets follow the Prometheus convention: bucket i counts observations
/// `<= bounds[i]` (cumulative rendering happens at exposition time; storage
/// is per-bucket), with an implicit +Inf bucket at the end.
class Histogram {
 public:
  /// `bounds` must be strictly increasing upper bounds; an empty vector
  /// leaves only the +Inf bucket.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  /// Index of the bucket `value` lands in (the first bound >= value, or
  /// the +Inf bucket). Exposed for the bucket-math tests.
  size_t BucketFor(double value) const;

  size_t num_buckets() const { return buckets_.size(); }
  const std::vector<double>& bounds() const { return bounds_; }

  /// A consistent-enough snapshot for rendering: per-bucket counts, total
  /// count and sum.
  struct Snapshot {
    std::vector<uint64_t> buckets;  ///< per-bucket (non-cumulative) counts
    uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;

  /// Estimates the p-quantile (p in [0, 1]) of the observed distribution the
  /// way Prometheus' histogram_quantile does: find the bucket the rank
  /// p * count falls in and interpolate linearly inside it (the first
  /// bucket's lower edge is 0). An empty histogram (or one built with no
  /// finite bounds) returns 0.
  ///
  /// Overflow-bucket clamp: a rank that lands in the implicit +Inf bucket
  /// has no finite upper edge to interpolate toward, so the estimate CLAMPS
  /// to the highest finite bound — deliberately, and explicitly (this used
  /// to fall out of the loop structure silently). The returned value is
  /// therefore a LOWER bound on the true quantile whenever observations
  /// exceed bounds().back(); callers sizing buckets should make the last
  /// finite bound generous enough that the clamp is the rare case. This is
  /// the estimator behind QueryLog's adaptive slow-query threshold and the
  /// SlidingHistogram's windowed p50/p99.
  double Quantile(double p) const;

  /// The quantile estimate over an externally-merged snapshot with these
  /// bounds (the SlidingHistogram's windowed spelling). Same interpolation
  /// and overflow clamp as Quantile().
  static double QuantileOf(const Snapshot& snap,
                           const std::vector<double>& bounds, double p);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  /// Sum of observations, stored as raw double bits and accumulated with a
  /// CAS loop (portable, unlike atomic<double>::fetch_add).
  std::atomic<uint64_t> sum_bits_{0};
};

/// Default latency buckets for wall-clock seconds: exponential from 10us
/// to ~10s, the range a Personalize call or an executor query can span.
std::vector<double> DefaultLatencyBuckets();

/// One label of a metric series, held raw (unescaped); escaping happens at
/// name-construction / exposition time.
struct MetricLabel {
  std::string key;
  std::string value;
};

/// Escapes a label value for Prometheus text exposition per the spec:
/// backslash -> \\, double quote -> \", newline -> \n.
std::string EscapeLabelValue(const std::string& value);

/// Builds the full series name `base{key="value",...}` with every value
/// escaped. This is THE way to register a series keyed by runtime data
/// (user ids, table names): raw ids with quotes, backslashes or newlines
/// would otherwise corrupt the exposition format.
std::string LabeledName(const std::string& base,
                        const std::vector<MetricLabel>& labels);

/// \brief Name -> metric registry with stable pointers.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it on first use.
  /// `help` is recorded on creation (later calls may pass ""). Pointers
  /// stay valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name, const std::string& help = "");

  /// Returns the histogram registered under `name`, creating it with
  /// `bounds` on first use (later calls reuse the existing buckets).
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds,
                          const std::string& help = "");

  /// Returns the gauge registered under `name`, creating it on first use.
  Gauge* GetGauge(const std::string& name, const std::string& help = "");

  /// Returns a gauge EXPOSED as a Prometheus counter: `# TYPE ... counter`
  /// in the text format and listed among "counters" in the JSON snapshot.
  /// For monotonic totals mirrored from an external source at collection
  /// time (process CPU seconds from /proc, the profiler's cumulative sample
  /// and lock-wait totals) — values that only grow but are absolute reads,
  /// not increments, and may be fractional. The caller owns monotonicity;
  /// the registry just renders the declared type. A name registered through
  /// this accessor stays counter-typed for the registry's lifetime (and vice
  /// versa: GetGauge never flips an existing series' type).
  Gauge* GetCounterGauge(const std::string& name,
                         const std::string& help = "");

  /// Labeled spellings: the series name is LabeledName(base, labels) (label
  /// values escaped), and creation is subject to the cardinality cap — once
  /// `label_cardinality_limit()` distinct labeled series exist under `base`,
  /// NEW series are rerouted to the overflow series with every label value
  /// replaced by "__other__" (so a process serving millions of users exposes
  /// at most limit + 1 series per base, and no sample is ever dropped).
  /// Existing series keep resolving to their own pointer forever.
  Counter* GetCounter(const std::string& base,
                      const std::vector<MetricLabel>& labels,
                      const std::string& help = "");
  Histogram* GetHistogram(const std::string& base,
                          const std::vector<MetricLabel>& labels,
                          std::vector<double> bounds,
                          const std::string& help = "");
  Gauge* GetGauge(const std::string& base,
                  const std::vector<MetricLabel>& labels,
                  const std::string& help = "");

  /// Per-base cap on distinct labeled series (default 1024). The overflow
  /// series does not count against the cap. Applies to labeled creations
  /// through both the labeled API and raw `base{...}` names.
  void SetLabelCardinalityLimit(size_t limit);
  size_t label_cardinality_limit() const;

  /// Registers a callback run at the start of every RenderText/RenderJson
  /// — the pull-model refresh point where gauges mirroring external state
  /// (process RSS, live session counts, windowed SLO attainment) are
  /// brought current before the scrape is rendered. Hooks run WITHOUT the
  /// registry lock held, so they may freely call Get*/Set on this registry.
  /// Returns an id for RemoveCollectionHook.
  size_t AddCollectionHook(std::function<void()> hook);
  /// Unregisters a hook; safe for ids already removed. Objects shorter-
  /// lived than the registry (e.g. a Scheduler updating queue gauges) must
  /// remove their hooks before dying.
  void RemoveCollectionHook(size_t id);

  /// Prometheus text exposition of every registered series, in
  /// registration order, grouped by base name: counters, then gauges, then
  /// histograms. Runs the collection hooks first.
  std::string RenderText() const;

  /// JSON snapshot: {"counters": {name: value, ...},
  /// "gauges": {name: value, ...},
  /// "histograms": {name: {"count": n, "sum": s, "buckets": [...],
  /// "bounds": [...]}, ...}}. Runs the collection hooks first.
  std::string RenderJson() const;

 private:
  struct CounterEntry {
    std::string name;
    std::string help;
    std::unique_ptr<Counter> counter;
  };
  struct GaugeEntry {
    std::string name;
    std::string help;
    std::unique_ptr<Gauge> gauge;
    /// Exposed as `# TYPE ... counter` (see GetCounterGauge); per-family —
    /// the first entry of a base name decides the family's declared type.
    bool as_counter = false;
  };
  struct HistogramEntry {
    std::string name;
    std::string help;
    std::unique_ptr<Histogram> histogram;
  };

  /// Copies the registered hooks (under hooks_mu_) and runs them unlocked.
  void RunCollectionHooks() const;

  /// Shared body of GetGauge / GetCounterGauge: resolve-or-create under mu_
  /// with `as_counter` recorded at creation (never flipped afterwards).
  Gauge* GetGaugeImpl(const std::string& name, const std::string& help,
                      bool as_counter);

  /// Applies the cardinality cap to `name` (must hold mu_): returns `name`
  /// unchanged while the base is under the limit or the series already
  /// exists, else the `__other__` overflow name.
  std::string CappedName(const std::string& name, bool exists) const;
  size_t LabeledCountLocked(const std::string& base) const;

  mutable std::mutex mu_;
  size_t label_limit_ = 1024;
  std::vector<CounterEntry> counters_;
  std::vector<GaugeEntry> gauges_;
  std::vector<HistogramEntry> histograms_;

  /// Collection hooks, guarded by their own mutex (never held while a hook
  /// runs, and ordered independently of mu_ — hooks take mu_ via Get*).
  mutable std::mutex hooks_mu_;
  size_t next_hook_id_ = 0;
  std::vector<std::pair<size_t, std::function<void()>>> hooks_;
};

/// Free-function spellings of the renders (the canonical API surface).
std::string RenderText(const MetricsRegistry& registry);
std::string RenderJson(const MetricsRegistry& registry);

}  // namespace qp::obs
