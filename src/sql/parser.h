// Recursive-descent parser for the supported SQL subset:
//
//   query       := select (UNION ALL select)*
//   select      := SELECT [DISTINCT] items FROM sources [WHERE expr]
//                  [GROUP BY columns] [HAVING expr] [ORDER BY keys] [LIMIT n]
//   item        := * | expr [[AS] ident]
//   source      := ident [ident] | '(' query ')' [ident]
//   expr        := or-precedence over AND/OR/NOT, comparisons, BETWEEN
//                  (desugared to >= AND <=), and [NOT] IN '(' query ')'
//   operand     := literal | [table.]column | ident '(' (expr | '*') ')'
//
// This covers every query the personalization layer emits (see Example 6 and
// Figure 6 of the paper) plus what the examples need.

#pragma once

#include <string>

#include "common/status.h"
#include "sql/query.h"

namespace qp::sql {

/// Parses a complete query (single select or UNION ALL chain).
Result<QueryPtr> ParseQuery(const std::string& text);

/// Parses a standalone expression (exposed for tests and profile loading).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace qp::sql
