#include "sql/tokenizer.h"

#include <cctype>
#include <unordered_set>

#include "common/string_util.h"

namespace qp::sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords = {
      "select", "distinct", "from",  "where", "and",   "or",    "not",
      "in",     "between",  "group", "by",    "having", "order", "asc",
      "desc",   "limit",    "union", "all",   "as",     "null",  "is",
  };
  return kKeywords;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      std::string word = ToLower(input.substr(i, j - i));
      const bool is_kw = Keywords().count(word) > 0;
      tokens.push_back({is_kw ? TokenKind::kKeyword : TokenKind::kIdentifier,
                        std::move(word), start});
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i + 1;
      bool saw_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       (!saw_dot && input[j] == '.' && j + 1 < n &&
                        std::isdigit(static_cast<unsigned char>(input[j + 1]))))) {
        if (input[j] == '.') saw_dot = true;
        ++j;
      }
      tokens.push_back({TokenKind::kNumber, input.substr(i, j - i), start});
      i = j;
    } else if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {
            text += '\'';
            j += 2;
          } else {
            closed = true;
            ++j;
            break;
          }
        } else {
          text += input[j];
          ++j;
        }
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({TokenKind::kString, std::move(text), start});
      i = j;
    } else if (c == '<') {
      if (i + 1 < n && (input[i + 1] == '=' || input[i + 1] == '>')) {
        tokens.push_back({TokenKind::kSymbol, input.substr(i, 2), start});
        i += 2;
      } else {
        tokens.push_back({TokenKind::kSymbol, "<", start});
        ++i;
      }
    } else if (c == '>') {
      if (i + 1 < n && input[i + 1] == '=') {
        tokens.push_back({TokenKind::kSymbol, ">=", start});
        i += 2;
      } else {
        tokens.push_back({TokenKind::kSymbol, ">", start});
        ++i;
      }
    } else if (c == '!' && i + 1 < n && input[i + 1] == '=') {
      tokens.push_back({TokenKind::kSymbol, "<>", start});
      i += 2;
    } else if (c == '(' || c == ')' || c == ',' || c == '.' || c == '=' ||
               c == '*') {
      tokens.push_back({TokenKind::kSymbol, std::string(1, c), start});
      ++i;
    } else {
      return Status::ParseError("unexpected character '" + std::string(1, c) +
                                "' at offset " + std::to_string(start));
    }
  }
  tokens.push_back({TokenKind::kEnd, "", n});
  return tokens;
}

}  // namespace qp::sql
