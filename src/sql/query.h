// Query AST for the supported subset: SELECT [DISTINCT] items FROM tables
// (base or derived) WHERE conjunction [GROUP BY ... HAVING ...]
// [ORDER BY ...] [LIMIT n], plus UNION ALL compounds. This is exactly the
// shape of query that SPA and PPA construct (see paper Section 5).

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sql/expr.h"

namespace qp::sql {

class Query;

/// \brief One FROM-clause entry: a base table or a parenthesized derived
/// query, with an alias used for column qualification.
struct TableRef {
  /// Base table name (empty when `derived` is set).
  std::string table;
  /// Alias; defaults to the table name when empty.
  std::string alias;
  /// Derived-table subquery, e.g. the UNION ALL in SPA's outer query.
  std::shared_ptr<const Query> derived;

  /// The name columns of this source are qualified with.
  const std::string& EffectiveAlias() const {
    return alias.empty() ? table : alias;
  }

  std::string ToString() const;
};

/// \brief One select-list item.
struct SelectItem {
  ExprPtr expr;
  /// Output column name; derived from the expression when empty.
  std::string alias;

  /// The name this item contributes to the output schema.
  std::string OutputName() const;
};

/// \brief One ORDER BY key.
struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

/// \brief A single SELECT block.
class SelectQuery {
 public:
  bool distinct = false;
  std::vector<SelectItem> select;
  std::vector<TableRef> from;
  /// WHERE predicate (null = true). The executor exploits conjunctions of
  /// selection/join atoms; arbitrary residual expressions are filtered.
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<size_t> limit;

  /// True if any select item or the HAVING clause contains an aggregate.
  bool IsAggregate() const;

  /// Names of all tables referenced (via FROM aliases) by this block.
  std::vector<std::string> FromAliases() const;

  std::string ToString() const;
};

/// \brief A full query: one SELECT or a UNION ALL of several.
class Query {
 public:
  /// Wraps a single select.
  static std::shared_ptr<const Query> Single(SelectQuery q);
  /// UNION ALL of `branches` (at least one).
  static std::shared_ptr<const Query> UnionAll(std::vector<SelectQuery> branches);

  bool is_union() const { return branches_.size() > 1; }
  const std::vector<SelectQuery>& branches() const { return branches_; }
  const SelectQuery& single() const { return branches_.front(); }

  std::string ToString() const;

 private:
  std::vector<SelectQuery> branches_;
};

/// Convenience for expressions holding subqueries.
using QueryPtr = std::shared_ptr<const Query>;

}  // namespace qp::sql
