// SQL tokenizer for the supported subset. Keywords are case-insensitive;
// strings use single quotes with '' escapes.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace qp::sql {

enum class TokenKind {
  kIdentifier,
  kKeyword,
  kNumber,
  kString,
  kSymbol,  // ( ) , . = <> < <= > >= *
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  /// Keyword/identifier text is lower-cased; symbols keep their spelling;
  /// strings are unescaped contents.
  std::string text;
  /// Byte offset in the input, for error messages.
  size_t position = 0;

  bool Is(TokenKind k, const std::string& t) const {
    return kind == k && text == t;
  }
  bool IsKeyword(const std::string& kw) const {
    return Is(TokenKind::kKeyword, kw);
  }
  bool IsSymbol(const std::string& s) const {
    return Is(TokenKind::kSymbol, s);
  }
};

/// Splits `input` into tokens; the last token is always kEnd.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace qp::sql
