#include "sql/query.h"

#include <cassert>

#include "common/string_util.h"

namespace qp::sql {

std::string TableRef::ToString() const {
  std::string out;
  if (derived != nullptr) {
    out = "(" + derived->ToString() + ")";
  } else {
    out = table;
  }
  if (!alias.empty() && alias != table) {
    out += " " + alias;
  }
  return out;
}

std::string SelectItem::OutputName() const {
  if (!alias.empty()) return ToLower(alias);
  if (expr->kind() == ExprKind::kColumnRef) return expr->column();
  return ToLower(expr->ToString());
}

bool ContainsAggregate(const ExprPtr& e) {
  if (e == nullptr) return false;
  switch (e->kind()) {
    case ExprKind::kAggregateCall:
      return true;
    case ExprKind::kComparison:
    case ExprKind::kAnd:
    case ExprKind::kOr:
      return ContainsAggregate(e->left()) || ContainsAggregate(e->right());
    case ExprKind::kNot:
      return ContainsAggregate(e->operand());
    default:
      return false;
  }
}

bool SelectQuery::IsAggregate() const {
  if (!group_by.empty()) return true;
  if (ContainsAggregate(having)) return true;
  for (const auto& item : select) {
    if (ContainsAggregate(item.expr)) return true;
  }
  return false;
}

std::vector<std::string> SelectQuery::FromAliases() const {
  std::vector<std::string> out;
  out.reserve(from.size());
  for (const auto& t : from) out.push_back(ToLower(t.EffectiveAlias()));
  return out;
}

std::string SelectQuery::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) out += ", ";
    out += select[i].expr->ToString();
    if (!select[i].alias.empty()) out += " AS " + select[i].alias;
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    out += from[i].ToString();
  }
  if (where != nullptr) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having != nullptr) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      out += order_by[i].ascending ? " ASC" : " DESC";
    }
  }
  if (limit.has_value()) out += " LIMIT " + std::to_string(*limit);
  return out;
}

std::shared_ptr<const Query> Query::Single(SelectQuery q) {
  auto out = std::make_shared<Query>();
  out->branches_.push_back(std::move(q));
  return out;
}

std::shared_ptr<const Query> Query::UnionAll(
    std::vector<SelectQuery> branches) {
  assert(!branches.empty());
  auto out = std::make_shared<Query>();
  out->branches_ = std::move(branches);
  return out;
}

std::string Query::ToString() const {
  std::string out;
  for (size_t i = 0; i < branches_.size(); ++i) {
    if (i > 0) out += " UNION ALL ";
    out += branches_[i].ToString();
  }
  return out;
}

}  // namespace qp::sql
