// Expression AST for the supported SQL subset. Expressions appear in WHERE
// and HAVING clauses and in select lists (literal doi columns, aggregate
// calls). The tree is immutable-after-build and deep-clonable, since SPA/PPA
// derive many parameterized variants of one query.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace qp::sql {

class Query;  // defined in sql/query.h

/// Comparison operators of atomic conditions.
enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

/// Returns the SQL spelling of `op` ("=", "<>", ...).
const char* BinaryOpName(BinaryOp op);

/// Returns the logical negation, e.g. kLt -> kGe.
BinaryOp NegateOp(BinaryOp op);

/// Flips operand order, e.g. kLt -> kGt.
BinaryOp FlipOp(BinaryOp op);

/// Expression node kinds.
enum class ExprKind {
  kLiteral,
  kColumnRef,
  kComparison,
  kAnd,
  kOr,
  kNot,
  kInSubquery,
  kAggregateCall,
  kScalarFn,
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// \brief A node in the expression tree.
///
/// Nodes are created through the static factories and shared immutably;
/// "cloning" is therefore free.
class Expr {
 public:
  static ExprPtr Literal(storage::Value v);
  /// Column reference; `table` is the table name or alias as written.
  static ExprPtr Column(std::string table, std::string column);
  static ExprPtr Compare(BinaryOp op, ExprPtr left, ExprPtr right);
  static ExprPtr And(ExprPtr left, ExprPtr right);
  /// Conjunction of `terms` (returns TRUE literal if empty, the sole term
  /// if singleton).
  static ExprPtr AndAll(std::vector<ExprPtr> terms);
  static ExprPtr Or(ExprPtr left, ExprPtr right);
  static ExprPtr Not(ExprPtr operand);
  /// `needle [NOT] IN (subquery)`.
  static ExprPtr InSubquery(ExprPtr needle, std::shared_ptr<const Query> subquery,
                            bool negated);
  /// Aggregate call, e.g. COUNT(*) (empty arg) or r(degree).
  static ExprPtr Aggregate(std::string function, ExprPtr arg);
  /// Scalar user function applied to one argument, e.g. the per-tuple doi of
  /// an elastic preference: elastic_doi(movie.duration). `name` is used for
  /// printing only.
  static ExprPtr ScalarFn(std::string name,
                          std::function<storage::Value(const storage::Value&)> fn,
                          ExprPtr arg);

  ExprKind kind() const { return kind_; }

  // Accessors; valid only for the matching kind.
  const storage::Value& literal() const { return literal_; }
  const std::string& table() const { return table_; }
  const std::string& column() const { return column_; }
  BinaryOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  const ExprPtr& operand() const { return left_; }
  const std::shared_ptr<const Query>& subquery() const {
    return subquery_;
  }
  bool negated() const { return negated_; }
  const std::string& function() const { return function_; }
  const ExprPtr& argument() const { return left_; }
  const std::function<storage::Value(const storage::Value&)>& scalar_fn()
      const {
    return scalar_fn_;
  }

  /// True for an atomic comparison `column <op> literal` (either operand
  /// order); outputs the normalized pieces if non-null.
  bool IsSelectionAtom(storage::AttributeRef* attr = nullptr,
                       BinaryOp* op = nullptr,
                       storage::Value* value = nullptr) const;

  /// True for `column = column` across two different table occurrences.
  bool IsJoinAtom(storage::AttributeRef* left = nullptr,
                  storage::AttributeRef* right = nullptr) const;

  /// Renders SQL text.
  std::string ToString() const;

 private:
  explicit Expr(ExprKind kind) : kind_(kind) {}

  ExprKind kind_;
  storage::Value literal_;
  std::string table_, column_;
  BinaryOp op_ = BinaryOp::kEq;
  ExprPtr left_, right_;
  std::shared_ptr<const Query> subquery_;
  bool negated_ = false;
  std::string function_;
  std::function<storage::Value(const storage::Value&)> scalar_fn_;
};

/// Helper: this shared expression (or null) as a conjunct list.
std::vector<ExprPtr> ConjunctsOf(const ExprPtr& expr);

}  // namespace qp::sql
