#include "sql/parser.h"

#include <cstdlib>

#include "sql/tokenizer.h"

namespace qp::sql {

namespace {

using storage::Value;

/// Stateful token cursor with the grammar's productions as methods.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<QueryPtr> ParseQuery() {
    QP_ASSIGN_OR_RETURN(SelectQuery first, ParseSelect());
    std::vector<SelectQuery> branches;
    branches.push_back(std::move(first));
    while (Peek().IsKeyword("union")) {
      Advance();
      if (!Peek().IsKeyword("all")) {
        return Error("only UNION ALL is supported");
      }
      Advance();
      QP_ASSIGN_OR_RETURN(SelectQuery next, ParseSelect());
      branches.push_back(std::move(next));
    }
    return Query::UnionAll(std::move(branches));
  }

  Result<QueryPtr> ParseTopLevel() {
    QP_ASSIGN_OR_RETURN(QueryPtr q, ParseQuery());
    QP_RETURN_IF_ERROR(ExpectEnd());
    return q;
  }

  Result<ExprPtr> ParseTopLevelExpr() {
    QP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    QP_RETURN_IF_ERROR(ExpectEnd());
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Accept(TokenKind kind, const std::string& text) {
    if (Peek().Is(kind, text)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptKeyword(const std::string& kw) {
    return Accept(TokenKind::kKeyword, kw);
  }
  bool AcceptSymbol(const std::string& s) {
    return Accept(TokenKind::kSymbol, s);
  }
  Status Expect(TokenKind kind, const std::string& text) {
    if (!Accept(kind, text)) {
      return Status::ParseError("expected '" + text + "' at offset " +
                                std::to_string(Peek().position) + ", got '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }
  Status ExpectEnd() {
    if (Peek().kind != TokenKind::kEnd) {
      return Status::ParseError("trailing input at offset " +
                                std::to_string(Peek().position) + ": '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Peek().position));
  }

  Result<SelectQuery> ParseSelect() {
    QP_RETURN_IF_ERROR(Expect(TokenKind::kKeyword, "select"));
    SelectQuery q;
    q.distinct = AcceptKeyword("distinct");

    // Select list.
    do {
      if (Peek().IsSymbol("*")) {
        Advance();
        // '*' is recorded as a column ref with empty table and column "*";
        // the binder expands it.
        q.select.push_back({Expr::Column("", "*"), ""});
        continue;
      }
      SelectItem item;
      QP_ASSIGN_OR_RETURN(item.expr, ParseOperand());
      if (AcceptKeyword("as")) {
        if (Peek().kind != TokenKind::kIdentifier) {
          return Error("expected alias after AS");
        }
        item.alias = Advance().text;
      } else if (Peek().kind == TokenKind::kIdentifier) {
        item.alias = Advance().text;
      }
      q.select.push_back(std::move(item));
    } while (AcceptSymbol(","));

    QP_RETURN_IF_ERROR(Expect(TokenKind::kKeyword, "from"));
    do {
      TableRef ref;
      if (AcceptSymbol("(")) {
        QP_ASSIGN_OR_RETURN(ref.derived, ParseQuery());
        QP_RETURN_IF_ERROR(Expect(TokenKind::kSymbol, ")"));
      } else {
        if (Peek().kind != TokenKind::kIdentifier) {
          return Error("expected table name");
        }
        ref.table = Advance().text;
      }
      if (Peek().kind == TokenKind::kIdentifier) {
        ref.alias = Advance().text;
      } else if (ref.derived != nullptr) {
        ref.alias = "_derived" + std::to_string(q.from.size());
      }
      q.from.push_back(std::move(ref));
    } while (AcceptSymbol(","));

    if (AcceptKeyword("where")) {
      QP_ASSIGN_OR_RETURN(q.where, ParseExpr());
    }
    if (AcceptKeyword("group")) {
      QP_RETURN_IF_ERROR(Expect(TokenKind::kKeyword, "by"));
      do {
        QP_ASSIGN_OR_RETURN(ExprPtr col, ParseOperand());
        q.group_by.push_back(std::move(col));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("having")) {
      QP_ASSIGN_OR_RETURN(q.having, ParseExpr());
    }
    if (AcceptKeyword("order")) {
      QP_RETURN_IF_ERROR(Expect(TokenKind::kKeyword, "by"));
      do {
        OrderItem item;
        QP_ASSIGN_OR_RETURN(item.expr, ParseOperand());
        if (AcceptKeyword("desc")) {
          item.ascending = false;
        } else {
          AcceptKeyword("asc");
        }
        q.order_by.push_back(std::move(item));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("limit")) {
      if (Peek().kind != TokenKind::kNumber) {
        return Error("expected number after LIMIT");
      }
      q.limit = static_cast<size_t>(std::strtoull(Advance().text.c_str(),
                                                  nullptr, 10));
    }
    return q;
  }

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    QP_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (AcceptKeyword("or")) {
      QP_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Expr::Or(left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    QP_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (AcceptKeyword("and")) {
      QP_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = Expr::And(left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("not")) {
      QP_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return Expr::Not(e);
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    if (Peek().IsSymbol("(") && !Peek(1).IsKeyword("select")) {
      Advance();
      QP_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      QP_RETURN_IF_ERROR(Expect(TokenKind::kSymbol, ")"));
      return inner;
    }
    QP_ASSIGN_OR_RETURN(ExprPtr left, ParseOperand());

    for (const char* sym : {"=", "<>", "<=", ">=", "<", ">"}) {
      if (Peek().IsSymbol(sym)) {
        Advance();
        QP_ASSIGN_OR_RETURN(ExprPtr right, ParseOperand());
        BinaryOp op = BinaryOp::kEq;
        const std::string s = sym;
        if (s == "=") op = BinaryOp::kEq;
        else if (s == "<>") op = BinaryOp::kNe;
        else if (s == "<") op = BinaryOp::kLt;
        else if (s == "<=") op = BinaryOp::kLe;
        else if (s == ">") op = BinaryOp::kGt;
        else if (s == ">=") op = BinaryOp::kGe;
        return Expr::Compare(op, left, right);
      }
    }

    bool negated = false;
    if (Peek().IsKeyword("not") && Peek(1).IsKeyword("in")) {
      Advance();
      negated = true;
    }
    if (AcceptKeyword("in")) {
      QP_RETURN_IF_ERROR(Expect(TokenKind::kSymbol, "("));
      QP_ASSIGN_OR_RETURN(QueryPtr sub, ParseQuery());
      QP_RETURN_IF_ERROR(Expect(TokenKind::kSymbol, ")"));
      return Expr::InSubquery(left, sub, negated);
    }
    if (AcceptKeyword("between")) {
      QP_ASSIGN_OR_RETURN(ExprPtr lo, ParseOperand());
      QP_RETURN_IF_ERROR(Expect(TokenKind::kKeyword, "and"));
      QP_ASSIGN_OR_RETURN(ExprPtr hi, ParseOperand());
      return Expr::And(Expr::Compare(BinaryOp::kGe, left, lo),
                       Expr::Compare(BinaryOp::kLe, left, hi));
    }
    return left;
  }

  Result<ExprPtr> ParseOperand() {
    const Token& tok = Peek();
    if (tok.kind == TokenKind::kNumber) {
      Advance();
      if (tok.text.find('.') != std::string::npos) {
        return Expr::Literal(Value(std::strtod(tok.text.c_str(), nullptr)));
      }
      return Expr::Literal(Value(static_cast<int64_t>(
          std::strtoll(tok.text.c_str(), nullptr, 10))));
    }
    if (tok.kind == TokenKind::kString) {
      Advance();
      return Expr::Literal(Value(tok.text));
    }
    if (tok.IsKeyword("null")) {
      Advance();
      return Expr::Literal(Value::Null());
    }
    if (tok.kind == TokenKind::kIdentifier) {
      Advance();
      // Function call, e.g. count(*) or r(degree).
      if (Peek().IsSymbol("(")) {
        Advance();
        ExprPtr arg;
        if (AcceptSymbol("*")) {
          arg = nullptr;
        } else {
          QP_ASSIGN_OR_RETURN(arg, ParseOperand());
        }
        QP_RETURN_IF_ERROR(Expect(TokenKind::kSymbol, ")"));
        return Expr::Aggregate(tok.text, arg);
      }
      // Qualified or bare column.
      if (AcceptSymbol(".")) {
        if (Peek().kind != TokenKind::kIdentifier) {
          return Error("expected column name after '.'");
        }
        const std::string col = Advance().text;
        return Expr::Column(tok.text, col);
      }
      return Expr::Column("", tok.text);
    }
    return Error("expected operand, got '" + tok.text + "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<QueryPtr> ParseQuery(const std::string& text) {
  QP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseTopLevel();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  QP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseTopLevelExpr();
}

}  // namespace qp::sql
