#include "sql/expr.h"

#include "common/string_util.h"
#include "sql/query.h"

namespace qp::sql {

using storage::AttributeRef;
using storage::Value;

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
  }
  return "?";
}

BinaryOp NegateOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return BinaryOp::kNe;
    case BinaryOp::kNe:
      return BinaryOp::kEq;
    case BinaryOp::kLt:
      return BinaryOp::kGe;
    case BinaryOp::kLe:
      return BinaryOp::kGt;
    case BinaryOp::kGt:
      return BinaryOp::kLe;
    case BinaryOp::kGe:
      return BinaryOp::kLt;
  }
  return op;
}

BinaryOp FlipOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // = and <> are symmetric
  }
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kLiteral));
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Column(std::string table, std::string column) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kColumnRef));
  e->table_ = ToLower(table);
  e->column_ = ToLower(column);
  return e;
}

ExprPtr Expr::Compare(BinaryOp op, ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kComparison));
  e->op_ = op;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::And(ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kAnd));
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::AndAll(std::vector<ExprPtr> terms) {
  if (terms.empty()) return Literal(Value(int64_t{1}));
  ExprPtr acc = terms[0];
  for (size_t i = 1; i < terms.size(); ++i) acc = And(acc, terms[i]);
  return acc;
}

ExprPtr Expr::Or(ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kOr));
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::Not(ExprPtr operand) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kNot));
  e->left_ = std::move(operand);
  return e;
}

ExprPtr Expr::InSubquery(ExprPtr needle,
                         std::shared_ptr<const Query> subquery,
                         bool negated) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kInSubquery));
  e->left_ = std::move(needle);
  e->subquery_ = std::move(subquery);
  e->negated_ = negated;
  return e;
}

ExprPtr Expr::Aggregate(std::string function, ExprPtr arg) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kAggregateCall));
  e->function_ = ToLower(function);
  e->left_ = std::move(arg);
  return e;
}

ExprPtr Expr::ScalarFn(std::string name,
                       std::function<Value(const Value&)> fn, ExprPtr arg) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kScalarFn));
  e->function_ = ToLower(name);
  e->scalar_fn_ = std::move(fn);
  e->left_ = std::move(arg);
  return e;
}

bool Expr::IsSelectionAtom(AttributeRef* attr, BinaryOp* op,
                           Value* value) const {
  if (kind_ != ExprKind::kComparison) return false;
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  BinaryOp effective = op_;
  if (left_->kind() == ExprKind::kColumnRef &&
      right_->kind() == ExprKind::kLiteral) {
    col = left_.get();
    lit = right_.get();
  } else if (left_->kind() == ExprKind::kLiteral &&
             right_->kind() == ExprKind::kColumnRef) {
    col = right_.get();
    lit = left_.get();
    effective = FlipOp(op_);
  } else {
    return false;
  }
  if (attr != nullptr) *attr = AttributeRef(col->table(), col->column());
  if (op != nullptr) *op = effective;
  if (value != nullptr) *value = lit->literal();
  return true;
}

bool Expr::IsJoinAtom(AttributeRef* left, AttributeRef* right) const {
  if (kind_ != ExprKind::kComparison || op_ != BinaryOp::kEq) return false;
  if (left_->kind() != ExprKind::kColumnRef ||
      right_->kind() != ExprKind::kColumnRef) {
    return false;
  }
  if (left != nullptr) *left = AttributeRef(left_->table(), left_->column());
  if (right != nullptr) {
    *right = AttributeRef(right_->table(), right_->column());
  }
  return true;
}

std::vector<ExprPtr> ConjunctsOf(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  if (expr == nullptr) return out;
  if (expr->kind() == ExprKind::kAnd) {
    auto l = ConjunctsOf(expr->left());
    auto r = ConjunctsOf(expr->right());
    out.insert(out.end(), l.begin(), l.end());
    out.insert(out.end(), r.begin(), r.end());
  } else {
    out.push_back(expr);
  }
  return out;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kLiteral:
      if (literal_.is_string()) return "'" + literal_.as_string() + "'";
      return literal_.ToString();
    case ExprKind::kColumnRef:
      return table_.empty() ? column_ : table_ + "." + column_;
    case ExprKind::kComparison:
      return left_->ToString() + " " + BinaryOpName(op_) + " " +
             right_->ToString();
    case ExprKind::kAnd:
      return "(" + left_->ToString() + " AND " + right_->ToString() + ")";
    case ExprKind::kOr:
      return "(" + left_->ToString() + " OR " + right_->ToString() + ")";
    case ExprKind::kNot:
      return "NOT (" + left_->ToString() + ")";
    case ExprKind::kInSubquery:
      return left_->ToString() + (negated_ ? " NOT IN (" : " IN (") +
             subquery_->ToString() + ")";
    case ExprKind::kAggregateCall:
      return function_ + "(" + (left_ ? left_->ToString() : "*") + ")";
    case ExprKind::kScalarFn:
      return function_ + "(" + left_->ToString() + ")";
  }
  return "?";
}

}  // namespace qp::sql
