#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/string_util.h"

namespace qp::stats {

using storage::Value;

ColumnHistogram ColumnHistogram::Build(const std::vector<Value>& values,
                                       size_t num_buckets, size_t num_mcv) {
  ColumnHistogram h;
  h.total_count_ = values.size();

  std::vector<double> numerics;
  std::unordered_map<std::string, size_t> freq;
  bool any_string = false;
  for (const auto& v : values) {
    if (v.is_null()) {
      ++h.null_count_;
    } else if (v.is_numeric()) {
      numerics.push_back(v.ToNumeric());
    } else {
      any_string = true;
      ++freq[v.as_string()];
    }
  }

  if (!any_string && !numerics.empty()) {
    h.is_numeric_ = true;
    auto [mn, mx] = std::minmax_element(numerics.begin(), numerics.end());
    h.min_ = *mn;
    h.max_ = *mx;
    h.buckets_.assign(std::max<size_t>(num_buckets, 1), 0);
    const double width = (h.max_ - h.min_);
    for (double x : numerics) {
      size_t b = 0;
      if (width > 0) {
        b = static_cast<size_t>((x - h.min_) / width * h.buckets_.size());
        if (b >= h.buckets_.size()) b = h.buckets_.size() - 1;
      }
      ++h.buckets_[b];
    }
    std::set<double> distinct(numerics.begin(), numerics.end());
    h.distinct_count_ = distinct.size();
  } else {
    h.is_numeric_ = false;
    h.distinct_count_ = freq.size();
    // Keep the num_mcv most frequent values.
    std::vector<std::pair<std::string, size_t>> entries(freq.begin(),
                                                        freq.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    if (entries.size() > num_mcv) entries.resize(num_mcv);
    for (auto& [k, c] : entries) {
      h.mcv_covered_ += c;
      h.mcv_.emplace(std::move(k), c);
    }
  }
  return h;
}

double ColumnHistogram::EstimateRange(double lo, double hi) const {
  if (!is_numeric_ || total_count_ == 0 || buckets_.empty()) return 0.0;
  if (hi < lo) return 0.0;
  if (max_ == min_) {
    return (lo <= min_ && min_ <= hi)
               ? static_cast<double>(total_count_ - null_count_) / total_count_
               : 0.0;
  }
  const double width = (max_ - min_) / buckets_.size();
  double rows = 0.0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    const double b_lo = min_ + b * width;
    const double b_hi = b_lo + width;
    const double olap_lo = std::max(lo, b_lo);
    const double olap_hi = std::min(hi, b_hi);
    if (olap_hi <= olap_lo) continue;
    rows += buckets_[b] * (olap_hi - olap_lo) / width;
  }
  return std::min(1.0, rows / total_count_);
}

double ColumnHistogram::EstimateSelectivity(CompareOp op,
                                            const Value& literal) const {
  if (total_count_ == 0) return 0.0;
  if (literal.is_null()) return 0.0;

  if (is_numeric_ && literal.is_numeric()) {
    const double x = literal.ToNumeric();
    switch (op) {
      case CompareOp::kEq: {
        if (distinct_count_ == 0) return 0.0;
        if (x < min_ || x > max_) return 0.0;
        return 1.0 / distinct_count_;
      }
      case CompareOp::kNe:
        return 1.0 - EstimateSelectivity(CompareOp::kEq, literal);
      case CompareOp::kLt:
        return EstimateRange(min_ - 1.0, std::nexttoward(x, -1e300));
      case CompareOp::kLe:
        return EstimateRange(min_ - 1.0, x);
      case CompareOp::kGt:
        return EstimateRange(std::nexttoward(x, 1e300), max_ + 1.0);
      case CompareOp::kGe:
        return EstimateRange(x, max_ + 1.0);
    }
    return 0.0;
  }

  // String statistics: only equality/inequality are meaningful; range
  // operators fall back to 1/3 (the classic textbook default).
  if (!is_numeric_) {
    if (op == CompareOp::kEq || op == CompareOp::kNe) {
      double eq;
      auto it = literal.is_string() ? mcv_.find(literal.as_string())
                                    : mcv_.end();
      if (it != mcv_.end()) {
        eq = static_cast<double>(it->second) / total_count_;
      } else {
        // Uniform share of the non-MCV remainder.
        const size_t rest_rows = total_count_ - null_count_ - mcv_covered_;
        const size_t rest_distinct =
            distinct_count_ > mcv_.size() ? distinct_count_ - mcv_.size() : 1;
        eq = rest_rows == 0 ? 0.0
                            : static_cast<double>(rest_rows) / rest_distinct /
                                  total_count_;
      }
      return op == CompareOp::kEq ? eq : 1.0 - eq;
    }
    return 1.0 / 3.0;
  }
  return 1.0 / 3.0;
}

std::string ColumnHistogram::ToString() const {
  std::string out = "hist(total=" + std::to_string(total_count_) +
                    ", nulls=" + std::to_string(null_count_) +
                    ", distinct=" + std::to_string(distinct_count_);
  if (is_numeric_) {
    out += ", range=[" + FormatDouble(min_) + ", " + FormatDouble(max_) + "]";
  } else {
    out += ", mcv=" + std::to_string(mcv_.size());
  }
  out += ")";
  return out;
}

}  // namespace qp::stats
