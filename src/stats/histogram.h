// Per-column statistics: "simple histograms" exactly as the paper uses them
// (Section 5, PPA): PPA orders presence/absence queries by estimated
// selectivity. Numeric columns get equi-width bucket histograms; string
// columns get most-common-value statistics with a uniform tail estimate.

#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace qp::stats {

/// Comparison operators the estimator understands.
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

/// \brief Statistics for one column.
///
/// Numeric columns: equi-width histogram over [min, max] plus distinct
/// count. String columns: exact frequencies for the most common values,
/// uniform assumption for the rest.
class ColumnHistogram {
 public:
  /// Builds statistics from a column of values. NULLs are counted but not
  /// bucketed. `num_buckets` applies to numeric columns, `num_mcv` caps the
  /// most-common-value list for strings.
  static ColumnHistogram Build(const std::vector<storage::Value>& values,
                               size_t num_buckets = 32, size_t num_mcv = 64);

  /// Estimated fraction of rows satisfying `col <op> literal`, in [0, 1].
  double EstimateSelectivity(CompareOp op, const storage::Value& literal) const;

  /// Estimated fraction of rows with lo <= col <= hi.
  double EstimateRange(double lo, double hi) const;

  size_t total_count() const { return total_count_; }
  size_t null_count() const { return null_count_; }
  size_t distinct_count() const { return distinct_count_; }
  bool is_numeric() const { return is_numeric_; }
  double min() const { return min_; }
  double max() const { return max_; }

  std::string ToString() const;

 private:
  bool is_numeric_ = false;
  size_t total_count_ = 0;
  size_t null_count_ = 0;
  size_t distinct_count_ = 0;

  // Numeric representation.
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<size_t> buckets_;

  // String representation.
  std::unordered_map<std::string, size_t> mcv_;
  size_t mcv_covered_ = 0;  // rows covered by mcv_
};

}  // namespace qp::stats
