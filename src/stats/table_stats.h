// Database-wide statistics manager: lazily builds and caches per-column
// histograms, and answers selectivity questions about atomic predicates.

#pragma once

#include <map>
#include <string>

#include "common/status.h"
#include "stats/histogram.h"
#include "storage/database.h"

namespace qp::stats {

/// \brief Caches ColumnHistograms per (table, column) over one Database.
///
/// The cache is built on demand; call Invalidate() after bulk loads.
class StatsManager {
 public:
  explicit StatsManager(const storage::Database* db) : db_(db) {}

  /// Histogram for `attr` (built on first request).
  Result<const ColumnHistogram*> GetHistogram(
      const storage::AttributeRef& attr);

  /// Estimated selectivity of `attr <op> literal` in [0, 1]; returns 1/3 if
  /// the attribute cannot be resolved (conservative default).
  double EstimateSelectivity(const storage::AttributeRef& attr, CompareOp op,
                             const storage::Value& literal);

  /// Estimated selectivity of lo <= attr <= hi.
  double EstimateRangeSelectivity(const storage::AttributeRef& attr, double lo,
                                  double hi);

  /// Row count of `attr`'s table (0 if unknown).
  size_t TableRows(const std::string& table) const;

  void Invalidate() { cache_.clear(); }

 private:
  const storage::Database* db_;
  std::map<std::pair<std::string, std::string>, ColumnHistogram> cache_;
};

}  // namespace qp::stats
