// Database-wide statistics manager: lazily builds and caches per-column
// histograms, and answers selectivity questions about atomic predicates.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "stats/histogram.h"
#include "storage/database.h"

namespace qp::stats {

/// \brief Caches ColumnHistograms per (table, column) over one Database.
///
/// The cache is built on demand and versioned by an *epoch*: every
/// invalidation — explicit via Invalidate(), or automatic when the
/// database's data version changed since the histograms were built — bumps
/// it. Consumers that derive state from selectivity estimates (PPA's query
/// ordering, the serving layer's plan caches) key that state by the epoch,
/// so a bulk load or table mutation invalidates exactly the derived entries.
///
/// All estimate entry points are serialized on an internal mutex, so one
/// manager may be shared by concurrent planners (serve sessions). Histogram
/// pointers returned by GetHistogram stay valid until the next
/// invalidation; do not mutate tables while planning runs.
class StatsManager {
 public:
  explicit StatsManager(const storage::Database* db) : db_(db) {}

  /// Histogram for `attr` (built on first request).
  Result<const ColumnHistogram*> GetHistogram(
      const storage::AttributeRef& attr);

  /// Estimated selectivity of `attr <op> literal` in [0, 1]; returns 1/3 if
  /// the attribute cannot be resolved (conservative default).
  double EstimateSelectivity(const storage::AttributeRef& attr, CompareOp op,
                             const storage::Value& literal);

  /// Estimated selectivity of lo <= attr <= hi.
  double EstimateRangeSelectivity(const storage::AttributeRef& attr, double lo,
                                  double hi);

  /// Row count of `attr`'s table (0 if unknown).
  size_t TableRows(const std::string& table) const;

  void Invalidate() {
    std::lock_guard<std::mutex> lock(*mu_);
    InvalidateLocked();
  }

  /// The histogram epoch after syncing with the database's data version:
  /// if tables changed since the cache was built, the cache is dropped and
  /// the epoch bumped. Derived state built under an older epoch is stale.
  uint64_t Epoch() {
    std::lock_guard<std::mutex> lock(*mu_);
    RefreshLocked();
    return epoch_;
  }

 private:
  void InvalidateLocked() {
    cache_.clear();
    ++epoch_;
  }

  /// Drops the cache when the database mutated underneath it.
  void RefreshLocked() {
    const uint64_t v = db_->DataVersion();
    if (v != built_data_version_) {
      built_data_version_ = v;
      InvalidateLocked();
    }
  }

  Result<const ColumnHistogram*> GetHistogramLocked(
      const storage::AttributeRef& attr);

  const storage::Database* db_;
  /// Behind a unique_ptr so the manager (and Personalizer, which holds one
  /// by value inside a Result-returning factory) stays movable.
  std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  uint64_t epoch_ = 0;
  uint64_t built_data_version_ = 0;
  std::map<std::pair<std::string, std::string>, ColumnHistogram> cache_;
};

}  // namespace qp::stats
