#include "stats/table_stats.h"

namespace qp::stats {

using storage::AttributeRef;
using storage::Table;
using storage::Value;

Result<const ColumnHistogram*> StatsManager::GetHistogramLocked(
    const AttributeRef& attr) {
  RefreshLocked();
  const auto key = std::make_pair(attr.table, attr.column);
  auto it = cache_.find(key);
  if (it != cache_.end()) return &it->second;

  QP_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(attr.table));
  QP_ASSIGN_OR_RETURN(size_t col, table->schema().ColumnIndex(attr.column));
  std::vector<Value> values;
  values.reserve(table->num_rows());
  for (const auto& row : table->rows()) values.push_back(row[col]);
  it = cache_.emplace(key, ColumnHistogram::Build(values)).first;
  return &it->second;
}

Result<const ColumnHistogram*> StatsManager::GetHistogram(
    const AttributeRef& attr) {
  std::lock_guard<std::mutex> lock(*mu_);
  return GetHistogramLocked(attr);
}

double StatsManager::EstimateSelectivity(const AttributeRef& attr,
                                         CompareOp op, const Value& literal) {
  std::lock_guard<std::mutex> lock(*mu_);
  auto hist = GetHistogramLocked(attr);
  if (!hist.ok()) return 1.0 / 3.0;
  return (*hist)->EstimateSelectivity(op, literal);
}

double StatsManager::EstimateRangeSelectivity(const AttributeRef& attr,
                                              double lo, double hi) {
  std::lock_guard<std::mutex> lock(*mu_);
  auto hist = GetHistogramLocked(attr);
  if (!hist.ok()) return 1.0 / 3.0;
  return (*hist)->EstimateRange(lo, hi);
}

size_t StatsManager::TableRows(const std::string& table) const {
  auto t = db_->GetTable(table);
  if (!t.ok()) return 0;
  return (*t)->num_rows();
}

}  // namespace qp::stats
