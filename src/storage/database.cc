#include "storage/database.h"

#include "common/string_util.h"
#include "index/catalog.h"

namespace qp::storage {

Database::Database() : indexes_(std::make_unique<index::IndexCatalog>()) {}
Database::~Database() = default;
Database::Database(Database&&) noexcept = default;
Database& Database::operator=(Database&&) noexcept = default;

Result<Table*> Database::CreateTable(TableSchema schema) {
  const std::string key = ToLower(schema.name());
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + key + "' already exists");
  }
  for (const auto& pk : schema.primary_key()) {
    if (!schema.HasColumn(pk)) {
      return Status::InvalidArgument("primary key column '" + pk +
                                     "' not in table '" + key + "'");
    }
  }
  auto table = std::make_unique<Table>(std::move(schema));
  Table* raw = table.get();
  tables_.emplace(key, std::move(table));
  table_order_.push_back(key);
  return raw;
}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second.get();
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return static_cast<const Table*>(it->second.get());
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(ToLower(name)) > 0;
}

Status Database::AddJoinLink(const AttributeRef& left,
                             const AttributeRef& right) {
  QP_RETURN_IF_ERROR(ValidateAttribute(left));
  QP_RETURN_IF_ERROR(ValidateAttribute(right));
  join_links_.push_back({left, right});
  return Status::OK();
}

bool Database::AreJoinable(const AttributeRef& a, const AttributeRef& b) const {
  for (const auto& link : join_links_) {
    if ((link.left == a && link.right == b) ||
        (link.left == b && link.right == a)) {
      return true;
    }
  }
  return false;
}

Status Database::ValidateAttribute(const AttributeRef& attr) const {
  QP_ASSIGN_OR_RETURN(const Table* table, GetTable(attr.table));
  QP_ASSIGN_OR_RETURN(size_t idx, table->schema().ColumnIndex(attr.column));
  (void)idx;
  return Status::OK();
}

Result<DataType> Database::AttributeType(const AttributeRef& attr) const {
  QP_ASSIGN_OR_RETURN(const Table* table, GetTable(attr.table));
  QP_ASSIGN_OR_RETURN(size_t idx, table->schema().ColumnIndex(attr.column));
  return table->schema().column(idx).type;
}

Status Database::CreateIndex(const std::string& table,
                             const std::string& column,
                             index::IndexKind kind) {
  QP_ASSIGN_OR_RETURN(const Table* t, GetTable(table));
  return indexes_->Create(t, ToLower(table), column, kind);
}

Status Database::DropIndex(const std::string& table, const std::string& column,
                           index::IndexKind kind) {
  QP_RETURN_IF_ERROR(GetTable(table).status());
  return indexes_->Drop(ToLower(table), column, kind);
}

}  // namespace qp::storage
