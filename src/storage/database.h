// The database catalog: named tables plus declared join links between
// attributes. Join links let the personalization layer know which joins are
// meaningful (the schema graph the personalization graph extends).

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace qp::index {
class IndexCatalog;
enum class IndexKind;
}  // namespace qp::index

namespace qp::storage {

/// \brief A declared joinable attribute pair (undirected at schema level).
struct JoinLink {
  AttributeRef left;
  AttributeRef right;

  bool operator==(const JoinLink&) const = default;
};

/// \brief Named collection of tables with schema-level join metadata.
class Database {
 public:
  Database();
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  // Out of line: index::IndexCatalog is incomplete here.
  Database(Database&&) noexcept;
  Database& operator=(Database&&) noexcept;

  /// Creates an empty table; fails on duplicate name.
  Result<Table*> CreateTable(TableSchema schema);

  /// Looks up a table (case-insensitive); NotFound if absent.
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// All table names in creation order.
  std::vector<std::string> TableNames() const { return table_order_; }

  /// Declares `left` and `right` as joinable; both attributes must exist.
  Status AddJoinLink(const AttributeRef& left, const AttributeRef& right);

  const std::vector<JoinLink>& join_links() const { return join_links_; }

  /// True if a join link between the two attributes exists in either
  /// orientation.
  bool AreJoinable(const AttributeRef& a, const AttributeRef& b) const;

  /// Resolves an attribute reference; fails if table or column is missing.
  Status ValidateAttribute(const AttributeRef& attr) const;

  /// Type of the referenced attribute.
  Result<DataType> AttributeType(const AttributeRef& attr) const;

  /// Registers a secondary index on `table`.`column` in the index catalog
  /// and builds its first snapshot. Fails when the table or column is
  /// missing or the same (table, column, kind) index already exists.
  Status CreateIndex(const std::string& table, const std::string& column,
                     index::IndexKind kind);

  /// Unregisters a secondary index; NotFound when absent.
  Status DropIndex(const std::string& table, const std::string& column,
                   index::IndexKind kind);

  /// The secondary-index catalog. Snapshots handed out by it are kept
  /// consistent with table contents via Table::data_version — the same
  /// counter DataVersion() aggregates for the stats epoch.
  index::IndexCatalog& indexes() { return *indexes_; }
  const index::IndexCatalog& indexes() const { return *indexes_; }

  /// Monotonic catalog-wide data version: grows whenever a table is created
  /// or mutated (see Table::data_version). The stats manager compares this
  /// to decide when its histograms went stale; the serving layer keys plan
  /// caches by the derived stats epoch.
  uint64_t DataVersion() const {
    uint64_t v = table_order_.size();
    for (const auto& entry : tables_) v += entry.second->data_version();
    return v;
  }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> table_order_;
  std::vector<JoinLink> join_links_;
  std::unique_ptr<index::IndexCatalog> indexes_;
};

}  // namespace qp::storage
