// Typed runtime values. The engine supports NULL, 64-bit integers, doubles
// and strings — enough for the paper's movie schema and the SPJ query
// subset the personalization algorithms emit.

#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

#include "common/status.h"

namespace qp::storage {

/// Column/value data types.
enum class DataType {
  kNull,
  kInt,
  kDouble,
  kString,
};

/// Returns a stable name ("INT", "DOUBLE", ...) for a DataType.
const char* DataTypeName(DataType t);

/// \brief A dynamically typed scalar value.
///
/// Values order NULL first, then numerics (INT and DOUBLE compare by
/// numeric value), then strings. Cross-type numeric comparison is supported
/// because elastic preferences translate into range predicates over numeric
/// columns whose literals may be doubles.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  DataType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_numeric() const { return is_int() || is_double(); }

  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// Numeric view of an INT or DOUBLE value.
  double ToNumeric() const;

  /// Three-way comparison: negative, zero or positive. NULL sorts first;
  /// values of incomparable types order by type tag (stable but arbitrary).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Hash consistent with operator== (numeric INT/DOUBLE with equal value
  /// hash identically).
  size_t Hash() const;

  /// Renders the value for display ("NULL", "42", "3.5", "abc").
  std::string ToString() const;

  /// Parses `text` as a value of type `type` ("NULL" yields NULL).
  static Result<Value> Parse(const std::string& text, DataType type);

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace qp::storage
