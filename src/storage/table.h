// Row-oriented in-memory tables. Tables hold data only — secondary
// indexes live in the per-Database index::IndexCatalog and are consumed
// through the index::AccessPath API; the mutation counter below is what
// keeps them (and the stats layer) honest.

#pragma once

#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace qp::storage {

/// A row is a vector of values positionally matching a schema.
using Row = std::vector<Value>;

/// \brief In-memory relation: schema + rows.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  const TableSchema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }
  const Row& row(size_t i) const { return rows_[i]; }

  /// Appends a row; fails if arity or value types do not match the schema
  /// (NULL is accepted in any column).
  Status Append(Row row);

  /// Appends without type checks — used by bulk generators that construct
  /// rows directly from the schema.
  void AppendUnchecked(Row row) {
    rows_.push_back(std::move(row));
    ++data_version_;
  }

  /// Monotonic mutation counter: bumped on every append. The stats layer,
  /// the serving layer's plan caches, and the index catalog's snapshots all
  /// compare versions to detect that histograms, selectivity orderings and
  /// index snapshots went stale. Like all mutation, bumps are not
  /// synchronized with concurrent queries — mutate between serving calls
  /// only.
  uint64_t data_version() const { return data_version_; }

 private:
  TableSchema schema_;
  std::vector<Row> rows_;
  uint64_t data_version_ = 0;
};

}  // namespace qp::storage
