// Row-oriented in-memory tables with optional per-column hash indexes used
// by the executor to accelerate equality joins and point lookups.

#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace qp::storage {

/// A row is a vector of values positionally matching a schema.
using Row = std::vector<Value>;

/// \brief In-memory relation: schema + rows (+ lazily built hash indexes).
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  const TableSchema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }
  const Row& row(size_t i) const { return rows_[i]; }

  /// Appends a row; fails if arity or value types do not match the schema
  /// (NULL is accepted in any column).
  Status Append(Row row);

  /// Appends without type checks — used by bulk generators that construct
  /// rows directly from the schema.
  void AppendUnchecked(Row row) {
    rows_.push_back(std::move(row));
    ++data_version_;
  }

  /// Monotonic mutation counter: bumped on every append (and on explicit
  /// index invalidation). The stats layer and the serving layer's plan
  /// caches compare versions to detect that histograms, selectivity
  /// orderings and prepared index walks went stale. Like all mutation,
  /// bumps are not synchronized with concurrent queries — mutate between
  /// serving calls only.
  uint64_t data_version() const { return data_version_; }

  /// Returns (building on first use) a hash index over column `col_idx`:
  /// value -> row positions. Lazy construction is serialized on an internal
  /// mutex, so concurrent readers (parallel executor morsels, PPA probe
  /// workers) may race to the first use safely; once built, an index is
  /// immutable until InvalidateIndexes(), and the returned reference can be
  /// used lock-free. Mutating the table while queries run is not supported.
  const std::unordered_multimap<Value, size_t, ValueHash>& HashIndex(
      size_t col_idx) const;

  /// Returns (building on first use) an ordered index over column
  /// `col_idx`: (value, row position) pairs sorted by value, NULLs
  /// excluded. Serves range predicates from elastic preferences.
  const std::vector<std::pair<Value, size_t>>& OrderedIndex(
      size_t col_idx) const;

  /// Row positions with lo <= value <= hi in column `col_idx` (either bound
  /// may be open via `has_lo` / `has_hi`; open bounds still exclude NULLs).
  std::vector<size_t> RangeLookup(size_t col_idx, const Value& lo,
                                  bool lo_inclusive, bool has_lo,
                                  const Value& hi, bool hi_inclusive,
                                  bool has_hi) const;

  /// Number of rows RangeLookup would return, without materializing them.
  size_t RangeCount(size_t col_idx, const Value& lo, bool lo_inclusive,
                    bool has_lo, const Value& hi, bool hi_inclusive,
                    bool has_hi) const;

  /// Drops any built indexes (call after bulk mutation). Not safe while
  /// queries hold references to the dropped indexes.
  void InvalidateIndexes() {
    std::lock_guard<std::mutex> lock(index_mu_);
    indexes_.clear();
    ordered_indexes_.clear();
    ++data_version_;
  }

 private:
  TableSchema schema_;
  std::vector<Row> rows_;
  uint64_t data_version_ = 0;
  /// Guards lazy index construction (tables are stored behind unique_ptr in
  /// the Database catalog, so a non-movable member is fine).
  mutable std::mutex index_mu_;
  mutable std::unordered_map<size_t,
                             std::unordered_multimap<Value, size_t, ValueHash>>
      indexes_;
  mutable std::unordered_map<size_t, std::vector<std::pair<Value, size_t>>>
      ordered_indexes_;
};

}  // namespace qp::storage
