// CSV import/export so example datasets can be persisted and inspected.
// The dialect is minimal: comma separator, double-quote quoting with ""
// escapes, first line is the header.

#pragma once

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace qp::storage {

/// Writes `table` to `path` (header + one line per row). NULL is written as
/// the literal NULL.
Status WriteCsv(const Table& table, const std::string& path);

/// Reads rows from `path` into `table`. The header must match the schema's
/// column names (case-insensitive, same order). Values are parsed using the
/// schema's column types.
Status ReadCsv(Table* table, const std::string& path);

/// Parses a single CSV line into fields (exposed for testing).
Result<std::vector<std::string>> ParseCsvLine(const std::string& line);

/// Escapes one field for CSV output (exposed for testing).
std::string EscapeCsvField(const std::string& field);

}  // namespace qp::storage
