#include "storage/value.h"

#include <cmath>
#include <cstdlib>

#include "common/string_util.h"

namespace qp::storage {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "?";
}

DataType Value::type() const {
  switch (data_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kInt;
    case 2:
      return DataType::kDouble;
    default:
      return DataType::kString;
  }
}

double Value::ToNumeric() const {
  if (is_int()) return static_cast<double>(as_int());
  return as_double();
}

int Value::Compare(const Value& other) const {
  const bool a_null = is_null(), b_null = other.is_null();
  if (a_null || b_null) {
    if (a_null && b_null) return 0;
    return a_null ? -1 : 1;
  }
  if (is_numeric() && other.is_numeric()) {
    const double a = ToNumeric(), b = other.ToNumeric();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (is_string() && other.is_string()) {
    return as_string().compare(other.as_string());
  }
  // Incomparable types: order numerics before strings.
  return is_numeric() ? -1 : 1;
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  if (is_numeric()) {
    const double d = ToNumeric();
    // Integral doubles hash like the corresponding int for ==-consistency.
    return std::hash<double>{}(d);
  }
  return std::hash<std::string>{}(as_string());
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt:
      return std::to_string(as_int());
    case DataType::kDouble:
      return FormatDouble(as_double(), 10);
    case DataType::kString:
      return as_string();
  }
  return "?";
}

Result<Value> Value::Parse(const std::string& text, DataType type) {
  if (text == "NULL") return Value::Null();
  switch (type) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kInt: {
      char* end = nullptr;
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::ParseError("not an integer: '" + text + "'");
      }
      return Value(static_cast<int64_t>(v));
    }
    case DataType::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        return Status::ParseError("not a double: '" + text + "'");
      }
      return Value(v);
    }
    case DataType::kString:
      return Value(text);
  }
  return Status::Internal("unknown data type");
}

}  // namespace qp::storage
