// Whole-database persistence: a directory with a text manifest (schemas,
// primary keys, join links) plus one CSV per table. Lets examples and tools
// snapshot a generated database and reload it without regeneration.
//
// Manifest format (catalog.txt):
//   table movie (mid:INT, title:STRING, year:INT, duration:INT) pk(mid)
//   link movie.mid = genre.mid

#pragma once

#include <string>

#include "common/status.h"
#include "storage/database.h"

namespace qp::storage {

/// Serializes one schema to its manifest line (without the "table " prefix).
std::string SerializeSchema(const TableSchema& schema);

/// Parses a manifest schema line (the part after "table ").
Result<TableSchema> ParseSchema(const std::string& line);

/// Writes `db` to `directory` (created if missing): catalog.txt plus
/// <table>.csv files.
Status SaveDatabase(const Database& db, const std::string& directory);

/// Reads a database previously written by SaveDatabase.
Result<Database> LoadDatabase(const std::string& directory);

}  // namespace qp::storage
