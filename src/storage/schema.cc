#include "storage/schema.h"

#include "common/string_util.h"

namespace qp::storage {

AttributeRef::AttributeRef(std::string t, std::string c)
    : table(ToLower(t)), column(ToLower(c)) {}

Result<AttributeRef> AttributeRef::Parse(const std::string& qualified) {
  const size_t dot = qualified.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == qualified.size()) {
    return Status::ParseError("expected TABLE.column, got '" + qualified + "'");
  }
  return AttributeRef(qualified.substr(0, dot), qualified.substr(dot + 1));
}

TableSchema::TableSchema(std::string name, std::vector<Column> columns,
                         std::vector<std::string> primary_key)
    : name_(ToLower(name)), columns_(std::move(columns)) {
  for (auto& c : columns_) c.name = ToLower(c.name);
  for (auto& k : primary_key) primary_key_.push_back(ToLower(k));
}

Result<size_t> TableSchema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return Status::NotFound("no column '" + name + "' in table '" + name_ + "'");
}

std::string TableSchema::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += DataTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace qp::storage
