#include "storage/csv.h"

#include <fstream>

#include "common/string_util.h"

namespace qp::storage {

std::string EscapeCsvField(const std::string& field) {
  const bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Result<std::vector<std::string>> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quote in CSV line: " + line);
  }
  fields.push_back(std::move(cur));
  return fields;
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  const auto& schema = table.schema();
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) out << ',';
    out << EscapeCsvField(schema.column(i).name);
  }
  out << '\n';
  for (const auto& row : table.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << EscapeCsvField(row[i].ToString());
    }
    out << '\n';
  }
  if (!out) return Status::Internal("error writing '" + path + "'");
  return Status::OK();
}

Status ReadCsv(Table* table, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "' for reading");
  const auto& schema = table->schema();
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("empty CSV file: " + path);
  }
  QP_ASSIGN_OR_RETURN(std::vector<std::string> header, ParseCsvLine(line));
  if (header.size() != schema.num_columns()) {
    return Status::ParseError("CSV header arity mismatch in " + path);
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (!EqualsIgnoreCase(header[i], schema.column(i).name)) {
      return Status::ParseError("CSV header column '" + header[i] +
                                "' != schema column '" + schema.column(i).name +
                                "'");
    }
  }
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    QP_ASSIGN_OR_RETURN(std::vector<std::string> fields, ParseCsvLine(line));
    if (fields.size() != schema.num_columns()) {
      return Status::ParseError("CSV arity mismatch at line " +
                                std::to_string(line_no) + " in " + path);
    }
    Row row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      QP_ASSIGN_OR_RETURN(Value v,
                          Value::Parse(fields[i], schema.column(i).type));
      row.push_back(std::move(v));
    }
    QP_RETURN_IF_ERROR(table->Append(std::move(row)));
  }
  return Status::OK();
}

}  // namespace qp::storage
