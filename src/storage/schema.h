// Table schemas: named, typed columns with an optional primary key, plus
// qualified column identifiers used throughout the SQL and preference layers.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace qp::storage {

/// \brief A single column definition.
struct Column {
  std::string name;
  DataType type = DataType::kString;

  bool operator==(const Column&) const = default;
};

/// \brief A fully qualified attribute reference, e.g. MOVIE.year.
///
/// Names are stored lower-cased so lookups are case-insensitive, matching
/// common SQL behaviour.
struct AttributeRef {
  std::string table;
  std::string column;

  AttributeRef() = default;
  AttributeRef(std::string t, std::string c);

  /// Parses "TABLE.column"; fails if there is no dot.
  static Result<AttributeRef> Parse(const std::string& qualified);

  std::string ToString() const { return table + "." + column; }

  bool operator==(const AttributeRef&) const = default;
  bool operator<(const AttributeRef& o) const {
    if (table != o.table) return table < o.table;
    return column < o.column;
  }
};

struct AttributeRefHash {
  size_t operator()(const AttributeRef& a) const {
    return std::hash<std::string>{}(a.table) * 1315423911u ^
           std::hash<std::string>{}(a.column);
  }
};

/// \brief Schema of one relation: name, columns, optional primary key.
class TableSchema {
 public:
  TableSchema() = default;
  /// `primary_key` columns must be a subset of `columns` (checked lazily by
  /// Database::CreateTable).
  TableSchema(std::string name, std::vector<Column> columns,
              std::vector<std::string> primary_key = {});

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<std::string>& primary_key() const { return primary_key_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of column `name` (case-insensitive), or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  bool HasColumn(const std::string& name) const {
    return ColumnIndex(name).ok();
  }

  const Column& column(size_t i) const { return columns_[i]; }

  /// Renders "name(col:TYPE, ...)".
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<std::string> primary_key_;
};

}  // namespace qp::storage
