#include "storage/table.h"

#include <algorithm>

namespace qp::storage {

Status Table::Append(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()) + " for table " + schema_.name());
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    const DataType want = schema_.column(i).type;
    const DataType got = row[i].type();
    const bool numeric_ok = (want == DataType::kDouble && got == DataType::kInt);
    if (got != want && !numeric_ok) {
      return Status::InvalidArgument(
          "type mismatch in column '" + schema_.column(i).name + "': expected " +
          DataTypeName(want) + ", got " + DataTypeName(got));
    }
  }
  rows_.push_back(std::move(row));
  InvalidateIndexes();
  return Status::OK();
}

const std::vector<std::pair<Value, size_t>>& Table::OrderedIndex(
    size_t col_idx) const {
  std::lock_guard<std::mutex> lock(index_mu_);
  auto it = ordered_indexes_.find(col_idx);
  if (it == ordered_indexes_.end()) {
    std::vector<std::pair<Value, size_t>> index;
    index.reserve(rows_.size());
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (!rows_[i][col_idx].is_null()) index.emplace_back(rows_[i][col_idx], i);
    }
    std::sort(index.begin(), index.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    it = ordered_indexes_.emplace(col_idx, std::move(index)).first;
  }
  return it->second;
}

namespace {

/// [begin, end) slice of an ordered index covered by the bounds.
std::pair<const std::pair<Value, size_t>*, const std::pair<Value, size_t>*>
RangeSlice(const std::vector<std::pair<Value, size_t>>& index, const Value& lo,
           bool lo_inclusive, bool has_lo, const Value& hi, bool hi_inclusive,
           bool has_hi);

}  // namespace

size_t Table::RangeCount(size_t col_idx, const Value& lo, bool lo_inclusive,
                         bool has_lo, const Value& hi, bool hi_inclusive,
                         bool has_hi) const {
  const auto [begin, end] =
      RangeSlice(OrderedIndex(col_idx), lo, lo_inclusive, has_lo, hi,
                 hi_inclusive, has_hi);
  return begin < end ? static_cast<size_t>(end - begin) : 0;
}

std::vector<size_t> Table::RangeLookup(size_t col_idx, const Value& lo,
                                       bool lo_inclusive, bool has_lo,
                                       const Value& hi, bool hi_inclusive,
                                       bool has_hi) const {
  const auto& index = OrderedIndex(col_idx);
  const auto [begin, end] = RangeSlice(index, lo, lo_inclusive, has_lo, hi,
                                       hi_inclusive, has_hi);
  std::vector<size_t> out;
  for (auto it = begin; it < end; ++it) out.push_back(it->second);
  return out;
}

namespace {

std::pair<const std::pair<Value, size_t>*, const std::pair<Value, size_t>*>
RangeSlice(const std::vector<std::pair<Value, size_t>>& index, const Value& lo,
           bool lo_inclusive, bool has_lo, const Value& hi, bool hi_inclusive,
           bool has_hi) {
  const auto value_less = [](const std::pair<Value, size_t>& entry,
                             const Value& v) { return entry.first < v; };
  const auto less_value = [](const Value& v,
                             const std::pair<Value, size_t>& entry) {
    return v < entry.first;
  };
  const auto* begin = index.data();
  const auto* end = index.data() + index.size();
  if (has_lo) {
    begin = lo_inclusive
                ? std::lower_bound(begin, end, lo, value_less)
                : std::upper_bound(begin, end, lo, less_value);
  }
  if (has_hi) {
    end = hi_inclusive ? std::upper_bound(begin, end, hi, less_value)
                       : std::lower_bound(begin, end, hi, value_less);
  }
  return {begin, end};
}

}  // namespace

const std::unordered_multimap<Value, size_t, ValueHash>& Table::HashIndex(
    size_t col_idx) const {
  std::lock_guard<std::mutex> lock(index_mu_);
  auto it = indexes_.find(col_idx);
  if (it == indexes_.end()) {
    std::unordered_multimap<Value, size_t, ValueHash> index;
    index.reserve(rows_.size());
    for (size_t i = 0; i < rows_.size(); ++i) {
      index.emplace(rows_[i][col_idx], i);
    }
    it = indexes_.emplace(col_idx, std::move(index)).first;
  }
  return it->second;
}

}  // namespace qp::storage
