#include "storage/table.h"

namespace qp::storage {

Status Table::Append(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()) + " for table " + schema_.name());
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    const DataType want = schema_.column(i).type;
    const DataType got = row[i].type();
    const bool numeric_ok = (want == DataType::kDouble && got == DataType::kInt);
    if (got != want && !numeric_ok) {
      return Status::InvalidArgument(
          "type mismatch in column '" + schema_.column(i).name + "': expected " +
          DataTypeName(want) + ", got " + DataTypeName(got));
    }
  }
  rows_.push_back(std::move(row));
  ++data_version_;
  return Status::OK();
}

}  // namespace qp::storage
