#include "storage/catalog_io.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "storage/csv.h"

namespace qp::storage {

std::string SerializeSchema(const TableSchema& schema) {
  std::string out = schema.name() + " (";
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) out += ", ";
    out += schema.column(i).name;
    out += ":";
    out += DataTypeName(schema.column(i).type);
  }
  out += ")";
  if (!schema.primary_key().empty()) {
    out += " pk(" + Join(schema.primary_key(), ", ") + ")";
  }
  return out;
}

namespace {

Result<DataType> ParseDataType(std::string_view name) {
  if (EqualsIgnoreCase(name, "INT")) return DataType::kInt;
  if (EqualsIgnoreCase(name, "DOUBLE")) return DataType::kDouble;
  if (EqualsIgnoreCase(name, "STRING")) return DataType::kString;
  return Status::ParseError("unknown data type '" + std::string(name) + "'");
}

}  // namespace

Result<TableSchema> ParseSchema(const std::string& line) {
  const size_t open = line.find('(');
  const size_t close = line.find(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    return Status::ParseError("malformed schema line: " + line);
  }
  const std::string name(Trim(line.substr(0, open)));
  if (name.empty() || name.find(' ') != std::string::npos) {
    return Status::ParseError("bad table name in schema line: " + line);
  }
  std::vector<Column> columns;
  for (const auto& part : Split(line.substr(open + 1, close - open - 1), ',')) {
    const auto pieces = Split(std::string(Trim(part)), ':');
    if (pieces.size() != 2) {
      return Status::ParseError("bad column spec '" + part + "'");
    }
    QP_ASSIGN_OR_RETURN(DataType type, ParseDataType(Trim(pieces[1])));
    columns.push_back({std::string(Trim(pieces[0])), type});
  }
  std::vector<std::string> pk;
  const size_t pk_pos = line.find("pk(", close);
  if (pk_pos != std::string::npos) {
    const size_t pk_close = line.find(')', pk_pos);
    if (pk_close == std::string::npos) {
      return Status::ParseError("unterminated pk(...) in: " + line);
    }
    for (const auto& part :
         Split(line.substr(pk_pos + 3, pk_close - pk_pos - 3), ',')) {
      pk.push_back(std::string(Trim(part)));
    }
  }
  return TableSchema(name, std::move(columns), std::move(pk));
}

Status SaveDatabase(const Database& db, const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("cannot create directory '" + directory +
                            "': " + ec.message());
  }
  std::ofstream manifest(directory + "/catalog.txt");
  if (!manifest) {
    return Status::Internal("cannot write manifest in '" + directory + "'");
  }
  for (const auto& name : db.TableNames()) {
    QP_ASSIGN_OR_RETURN(const Table* table, db.GetTable(name));
    manifest << "table " << SerializeSchema(table->schema()) << "\n";
    QP_RETURN_IF_ERROR(WriteCsv(*table, directory + "/" + name + ".csv"));
  }
  for (const auto& link : db.join_links()) {
    manifest << "link " << link.left.ToString() << " = "
             << link.right.ToString() << "\n";
  }
  if (!manifest) {
    return Status::Internal("error writing manifest in '" + directory + "'");
  }
  return Status::OK();
}

Result<Database> LoadDatabase(const std::string& directory) {
  std::ifstream manifest(directory + "/catalog.txt");
  if (!manifest) {
    return Status::NotFound("no catalog.txt in '" + directory + "'");
  }
  Database db;
  std::string line;
  size_t line_no = 0;
  while (std::getline(manifest, line)) {
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (StartsWith(trimmed, "table ")) {
      QP_ASSIGN_OR_RETURN(TableSchema schema,
                          ParseSchema(std::string(trimmed.substr(6))));
      const std::string name = schema.name();
      QP_ASSIGN_OR_RETURN(Table * table, db.CreateTable(std::move(schema)));
      QP_RETURN_IF_ERROR(ReadCsv(table, directory + "/" + name + ".csv"));
    } else if (StartsWith(trimmed, "link ")) {
      const auto sides = Split(std::string(trimmed.substr(5)), '=');
      if (sides.size() != 2) {
        return Status::ParseError("bad link at manifest line " +
                                  std::to_string(line_no));
      }
      QP_ASSIGN_OR_RETURN(AttributeRef left,
                          AttributeRef::Parse(std::string(Trim(sides[0]))));
      QP_ASSIGN_OR_RETURN(AttributeRef right,
                          AttributeRef::Parse(std::string(Trim(sides[1]))));
      QP_RETURN_IF_ERROR(db.AddJoinLink(left, right));
    } else {
      return Status::ParseError("unrecognized manifest line " +
                                std::to_string(line_no) + ": " + line);
    }
  }
  return db;
}

}  // namespace qp::storage
