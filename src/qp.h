// qp.h — the library's public surface in one include.
//
// Pulls in the two front doors and everything their signatures mention:
//
//   qp::core::Personalizer        cold path: full pipeline per call
//   qp::core::PersonalizeOptions  one options struct for both paths
//   qp::core::PersonalizedAnswer  ranked, self-explanatory result tuples
//   qp::serve::ServingContext     warm path: cached multi-user serving
//   qp::serve::Session            per-user cache (graph, selections, plans)
//   qp::serve::Scheduler          async admission-controlled request queue
//                                 (lanes, deadlines, partial answers)
//   qp::Status / qp::Result<T>    error handling (Status codes classify
//                                 caller bugs vs retryable failures)
//
// plus the supporting vocabulary types they expose: UserProfile, DoiPair,
// RankingFunction, DescriptorRegistry, SelectQuery / ParseQuery, the
// exec::ExecOptions threading knobs, the secondary-index DDL
// (qp::Database::CreateIndex / DropIndex with qp::IndexKind, catalog
// introspection via qp::IndexCatalog), and the qp::obs observability
// primitives (TraceSpan for per-call tracing / EXPLAIN ANALYZE,
// MetricsRegistry behind ServingContext::MetricsText). Tools that generate
// data or simulate users keep including datagen/ and sim/ headers directly
// — those are internal to the experiments, not part of the serving surface.

#pragma once

#include "common/status.h"
#include "core/personalizer.h"
#include "core/pipeline.h"
#include "index/catalog.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "serve/scheduler.h"
#include "serve/serving_context.h"
#include "sql/parser.h"

namespace qp {

// Convenience aliases so applications can write qp::Personalizer without
// caring which layer a name lives in.
using core::AnswerAlgorithm;
using core::PersonalizedAnswer;
using core::PersonalizeOptions;
using core::Personalizer;
using core::SelectionAlgorithm;
using core::UserProfile;
using obs::FlightRecorder;
using obs::MetricsRegistry;
using obs::QueryLog;
using obs::TraceSpan;
using obs::TraceToChromeJson;
using common::CancelToken;
using index::IndexCatalog;
using index::IndexKind;
using storage::Database;
using serve::Lane;
using serve::RequestHandle;
using serve::Scheduler;
using serve::ServeCounters;
using serve::ServingContext;
using serve::Session;

}  // namespace qp
